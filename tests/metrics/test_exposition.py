"""Prometheus text exposition format conformance."""

import re

from repro.metrics import CONTENT_TYPE, MetricRegistry, expose


def test_content_type_is_prometheus_0_0_4():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_counter_help_type_and_sample():
    reg = MetricRegistry()
    reg.counter("x_total", "Things counted.").inc(3)
    text = expose(reg)
    assert "# HELP x_total Things counted.\n" in text
    assert "# TYPE x_total counter\n" in text
    assert "\nx_total 3\n" in text or text.startswith("x_total 3")


def test_gauge_sample():
    reg = MetricRegistry()
    reg.gauge("depth").set(7.5)
    assert "depth 7.5" in expose(reg)


def test_labels_rendered_and_escaped():
    reg = MetricRegistry()
    reg.counter("hits_total", labelnames=("component",)) \
        .labels('GPU1.L1"odd"\\x').inc()
    text = expose(reg)
    assert 'hits_total{component="GPU1.L1\\"odd\\"\\\\x"} 1' in text


def test_help_newlines_escaped():
    reg = MetricRegistry()
    reg.counter("x_total", "line one\nline two").inc()
    assert "# HELP x_total line one\\nline two" in expose(reg)


def test_histogram_cumulative_buckets_sum_count():
    reg = MetricRegistry()
    h = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    text = expose(reg)
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    # integral bounds render Go-client style, without the decimal
    assert 'lat_seconds_bucket{le="1"} 2' in text  # cumulative
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_sum 5.55" in text
    assert "lat_seconds_count 3" in text


def test_histogram_labels_combine_with_le():
    reg = MetricRegistry()
    reg.histogram("occ", labelnames=("component",),
                  buckets=(0.5,)).labels("CU0").observe(0.2)
    text = expose(reg)
    assert 'occ_bucket{component="CU0",le="0.5"} 1' in text
    assert 'occ_sum{component="CU0"} 0.2' in text


def test_integral_floats_render_without_decimal_point():
    reg = MetricRegistry()
    reg.counter("n_total").inc(12345.0)
    assert "n_total 12345\n" in expose(reg)


def test_exposition_parses_line_by_line():
    """Every non-comment line must be `name{labels} value`."""
    reg = MetricRegistry()
    reg.counter("a_total", "A.").inc(2)
    reg.gauge("b", labelnames=("x", "y")).labels("1", "2").set(3.5)
    reg.histogram("c", buckets=(1.0,)).observe(0.5)
    line_re = re.compile(
        r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? [0-9.eE+-]+|\+Inf$")
    for line in expose(reg).strip().splitlines():
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
        else:
            assert line_re.match(line), line


def test_empty_registry_exposes_empty_string():
    assert expose(MetricRegistry()) == ""


def test_collectors_run_before_exposition():
    reg = MetricRegistry()
    c = reg.counter("pulled_total")
    reg.add_collector(lambda: c.set(99.0))
    assert "pulled_total 99" in expose(reg)
