"""SeriesRecorder records registry metrics by name (satellite 2):
any family visible at /api/metrics can be captured alongside component
value paths, and the result round-trips through to_json/load."""

import pytest

from repro.core import (
    METRIC,
    Monitor,
    RTMClient,
    SeriesRecorder,
    load_recorded_series,
    metric_target,
)
from repro.core.export import _parse_metric_spec, _resolve_metric
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import suite_small


@pytest.fixture
def rig():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    client = RTMClient(url)
    yield platform, monitor, client
    monitor.stop_server()


def test_metric_target_marks_spec():
    assert metric_target("rtm_engine_events_total") == \
        (METRIC, "rtm_engine_events_total")


def test_parse_metric_spec_with_labels():
    name, labels = _parse_metric_spec(
        'rtm_cache_hits_total{component="GPU1.L2[0]"}')
    assert name == "rtm_cache_hits_total"
    assert labels == {"component": "GPU1.L2[0]"}
    assert _parse_metric_spec("plain_total") == ("plain_total", {})


def test_resolve_metric_subset_match_and_histogram_count():
    snapshot = {
        "hits_total": {"type": "counter", "help": "", "samples": [
            {"labels": {"component": "L1", "extra": "y"}, "value": 4.0},
            {"labels": {"component": "L2"}, "value": 9.0}]},
        "occ": {"type": "histogram", "help": "", "samples": [
            {"labels": {}, "buckets": {"1.0": 2, "+Inf": 0},
             "sum": 0.7, "count": 2}]},
    }
    assert _resolve_metric(snapshot, "hits_total{component=L2}") == 9.0
    # Subset match: the sample's extra label does not block it.
    assert _resolve_metric(snapshot, "hits_total{component=L1}") == 4.0
    assert _resolve_metric(snapshot, "occ") == 2.0
    assert _resolve_metric(snapshot, "absent_total") is None


def test_recorder_records_metric_and_roundtrips(rig, tmp_path):
    platform, _, client = rig
    suite_small()["fir"].enqueue(platform.driver)
    client.metrics_start()
    recorder = SeriesRecorder(client, [
        metric_target("rtm_engine_events_total"),
        metric_target("rtm_engine_sim_time_seconds"),
    ])
    recorder.sample_once()  # one sample before the run (zeros)
    assert platform.run()
    recorder.sample_once()  # and one after
    events = recorder.series[0]
    assert events.component == METRIC
    assert len(events.points) == 2
    t0, v0 = events.points[0]
    t1, v1 = events.points[1]
    assert v1 == platform.simulation.engine.event_count
    assert v1 > v0
    # Metric samples are timestamped with published simulation time.
    assert t1 == platform.simulation.engine.now

    path = recorder.to_json(tmp_path / "series.json")
    loaded = load_recorded_series(path)
    assert [s.label for s in loaded] == [s.label for s in recorder.series]
    assert loaded[0].points == events.points
    assert loaded[1].points == recorder.series[1].points


def test_recorder_mixes_metric_and_value_targets(rig, tmp_path):
    platform, _, client = rig
    name = client.components()[0]
    client.metrics_start()
    recorder = SeriesRecorder(client, [
        (name, "tick_count"),
        metric_target("rtm_engine_events_total"),
    ])
    recorder.sample_once()
    assert len(recorder.series[0].points) == 1  # /api/value path intact
    assert len(recorder.series[1].points) == 1
    csv_path = recorder.to_csv(tmp_path / "series.csv")
    header = csv_path.read_text().splitlines()[0]
    assert "metric.rtm_engine_events_total.value" in header


def test_recorder_skips_metric_points_when_endpoint_unavailable(rig):
    _, __, client = rig
    recorder = SeriesRecorder(client, [
        metric_target("rtm_engine_events_total")])
    client.metrics_snapshot = lambda **kw: (_ for _ in ()).throw(
        RuntimeError("down"))
    recorder.sample_once()
    assert recorder.series[0].points == []
