"""HTTP metrics API: /metrics, /api/metrics, /api/stream (SSE), and
the e2e acceptance scenario — scraping a running 2-chiplet StoreStorm.
"""

import threading
import urllib.request

import pytest

from repro.core import Monitor, RTMClient, RTMClientError
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import suite_small
from repro.workloads.storestorm import StoreStorm


@pytest.fixture
def rig():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    client = RTMClient(url)
    yield platform, monitor, client
    monitor.stop_server()


def _run(platform):
    thread = threading.Thread(target=platform.run)
    thread.start()
    return thread


# -- /metrics (Prometheus) -------------------------------------------------

def test_metrics_endpoint_content_type(rig):
    _, monitor, __ = rig
    with urllib.request.urlopen(f"{monitor.url}/metrics") as response:
        assert response.headers["Content-Type"] == \
            "text/plain; version=0.0.4; charset=utf-8"
        assert response.status == 200


def test_scrape_autostarts_sim_instrumentation(rig):
    platform, monitor, client = rig
    assert monitor.sim_metrics is None
    client.metrics_text()
    assert monitor.sim_metrics is not None
    assert monitor.sim_metrics.started
    assert platform.simulation.engine._hooks


def test_scrape_during_running_storestorm_has_required_families(rig):
    """Acceptance criterion: curl /metrics during a running 2-chiplet
    StoreStorm returns valid exposition including engine, buffer
    occupancy, cache, RDMA, and per-hook-position overhead families."""
    platform, _, client = rig
    StoreStorm().enqueue(platform.driver)
    client.metrics_start()  # attach before the run so hooks see it all
    thread = _run(platform)
    try:
        text = client.metrics_text()
    finally:
        thread.join()
    # One final scrape after completion: every family present & final.
    text = client.metrics_text()
    for family in ("rtm_engine_events_total",
                   "rtm_engine_queue_depth",
                   "rtm_buffer_occupancy_ratio_bucket",
                   "rtm_cache_hits_total",
                   "rtm_cache_mshr_occupancy",
                   "rtm_rdma_inflight",
                   "rtm_hook_callbacks_total",
                   "rtm_hook_callback_seconds_total",
                   "rtm_http_request_seconds_bucket",
                   "rtm_http_requests_total"):
        assert family in text, family
    # Valid exposition: every sample line is name{...} value.
    for line in text.strip().splitlines():
        if not line.startswith("#"):
            name, _, value = line.rpartition(" ")
            assert name and (value == "+Inf" or float(value) is not None)


def test_http_latency_by_endpoint_is_published(rig):
    _, __, client = rig
    client.overview()
    client.overview()
    snap = client.metrics_snapshot()
    requests = {(s["labels"]["method"], s["labels"]["endpoint"]):
                s["value"]
                for s in snap["rtm_http_requests_total"]["samples"]}
    assert requests[("GET", "/api/overview")] >= 2
    latency = {s["labels"]["endpoint"]: s for s in
               snap["rtm_http_request_seconds"]["samples"]}
    assert latency["/api/overview"]["count"] >= 2
    assert latency["/api/overview"]["sum"] > 0


# -- /api/metrics (JSON) ---------------------------------------------------

def test_api_metrics_snapshot_and_names_filter(rig):
    _, __, client = rig
    snap = client.metrics_snapshot(names="^rtm_engine")
    assert snap
    assert all(name.startswith("rtm_engine") for name in snap)


def test_api_metrics_bad_regex_is_400(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="400"):
        client.metrics_snapshot(names="(unclosed")


def test_api_metrics_delta(rig):
    platform, _, client = rig
    suite_small()["fir"].enqueue(platform.driver)
    client.metrics_start()
    client.metrics_snapshot(delta=True)  # establish the baseline
    thread = _run(platform)
    thread.join()
    delta = client.metrics_snapshot(delta=True)
    events = delta["rtm_engine_events_total"]["samples"][0]["value"]
    assert events == platform.simulation.engine.event_count
    # Second delta right after: nothing ran in between.
    again = client.metrics_snapshot(delta=True)
    assert again["rtm_engine_events_total"]["samples"][0]["value"] == 0


def test_metrics_start_stop_roundtrip(rig):
    platform, monitor, client = rig
    status = client.metrics_start()
    assert status["started"] is True
    assert platform.simulation.engine._hooks
    status = client.metrics_stop()
    assert status["started"] is False
    assert not platform.simulation.engine._hooks


def test_metrics_stop_without_attach_is_404(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="404"):
        client.metrics_stop()


def test_metrics_bad_action_is_400(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="400"):
        client._post("/api/metrics", action="explode")


# -- /api/stream (SSE) -----------------------------------------------------

def test_sse_stream_delivers_snapshots(rig):
    """Acceptance criterion: the SSE stream delivers >= 2 snapshots."""
    platform, _, client = rig
    StoreStorm().enqueue(platform.driver)
    thread = _run(platform)
    events = list(client.metrics_stream(interval=0.05, max_events=3))
    thread.join()
    assert len(events) >= 2
    for event in events:
        assert "metrics" in event
        assert "overview" in event
        assert "resources" in event
        assert event["metrics"]["rtm_engine_events_total"][
            "samples"][0]["value"] >= 0
    # Monotonic: later snapshots never report fewer events.
    counts = [e["metrics"]["rtm_engine_events_total"]["samples"][0]
              ["value"] for e in events]
    assert counts == sorted(counts)


def test_sse_stream_attach_false_leaves_sim_uninstrumented(rig):
    """attach=0 (used by the dashboard header) must not attach hooks."""
    platform, monitor, client = rig
    events = list(client.metrics_stream(interval=0.05, max_events=2,
                                        attach=False))
    assert len(events) == 2
    assert monitor.sim_metrics is None
    assert not platform.simulation.engine._hooks
    # Simulation families are absent; server-side ones may be present.
    assert "rtm_engine_events_total" not in events[0]["metrics"]


def test_sse_stream_names_filter(rig):
    _, __, client = rig
    events = list(client.metrics_stream(interval=0.05, max_events=2,
                                        names="^rtm_engine"))
    assert len(events) == 2
    assert all(name.startswith("rtm_engine")
               for name in events[0]["metrics"])


def test_sse_stream_bad_regex_is_400(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="400"):
        list(client.metrics_stream(max_events=1, names="(unclosed"))


def test_sse_stream_ends_when_server_stops(rig):
    platform, monitor, client = rig
    stream = client.metrics_stream(interval=10.0)  # long interval
    first = next(stream)  # the push before the first wait
    assert "metrics" in first
    stopper = threading.Timer(0.2, monitor.stop_server)
    stopper.start()
    # stop_server() sets the stopping event; the wait unparks and the
    # stream closes instead of sleeping out the 10s interval.
    remaining = list(stream)
    stopper.join()
    assert remaining == []


def test_watch_values_appear_in_registry(rig):
    """ValueMonitor publishes through the registry: a watch becomes a
    labelled rtm_watch_value sample visible over the metrics API."""
    platform, monitor, client = rig
    name = client.components()[0]
    watch_id = client.watch(name, "tick_count")
    client.watches()  # forces a sample round server-side
    snap = client.metrics_snapshot()
    labels = [s["labels"]["watch"] for s in
              snap["rtm_watch_value"]["samples"]]
    assert any(name in label for label in labels)
    client.unwatch(watch_id)
    snap = client.metrics_snapshot()
    family = snap.get("rtm_watch_value", {"samples": []})
    assert all(name not in s["labels"]["watch"]
               for s in family["samples"])


def test_resource_and_hang_gauges_in_exposition(rig):
    _, __, client = rig
    client.resources()
    client.hang()
    text = client.metrics_text()
    assert "rtm_process_cpu_percent" in text
    assert "rtm_process_rss_bytes" in text
    assert "rtm_sim_events_per_second" in text
    assert "rtm_hang_stalled_seconds" in text
    assert "rtm_hang_hung" in text
