"""SimMetrics wiring: zero-cost detached, full families attached."""

import pytest

from repro.akita.hooks import HookPos
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.metrics import MetricRegistry, SimMetrics, expose
from repro.workloads import suite_small


@pytest.fixture()
def platform():
    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    suite_small()["fir"].enqueue(p.driver)
    return p


def test_construction_attaches_nothing(platform):
    """Zero-cost discipline: building SimMetrics must not hook the
    engine or any component — only start() does."""
    SimMetrics(platform.simulation)
    assert not platform.simulation.engine._hooks
    assert all(not c._hooks for c in platform.simulation.components)


def test_stop_detaches_everything(platform):
    sm = SimMetrics(platform.simulation)
    sm.start()
    assert platform.simulation.engine._hooks
    sm.stop()
    assert not platform.simulation.engine._hooks
    assert all(not c._hooks for c in platform.simulation.components)


def test_start_stop_idempotent(platform):
    sm = SimMetrics(platform.simulation)
    sm.start()
    sm.start()
    assert len(platform.simulation.engine._hooks) == 1
    sm.stop()
    sm.stop()
    assert not platform.simulation.engine._hooks


def test_run_populates_all_layer_families(platform):
    sm = SimMetrics(platform.simulation)
    sm.start()
    assert platform.run()
    sm.stop()
    reg = sm.registry
    snap = reg.snapshot()

    # Engine layer.
    engine = platform.simulation.engine
    events = snap["rtm_engine_events_total"]["samples"][0]["value"]
    assert events == engine.event_count > 0
    assert snap["rtm_engine_sim_time_seconds"]["samples"][0][
        "value"] == engine.now
    assert snap["rtm_engine_event_wall_seconds_total"]["samples"][0][
        "value"] > 0
    assert snap["rtm_engine_pass_wall_seconds"]["samples"][0][
        "count"] >= 1

    # Port/buffer layer.
    sent = sum(s["value"] for s in
               snap["rtm_port_messages_sent_total"]["samples"])
    delivered = sum(s["value"] for s in
                    snap["rtm_port_messages_delivered_total"]["samples"])
    assert sent > 0 and delivered > 0
    occupancy = snap["rtm_buffer_occupancy_ratio"]["samples"]
    assert sum(s["count"] for s in occupancy) > 0
    for sample in occupancy:
        # snapshot buckets are per-bin: they sum to the count, and a
        # fullness ratio can never land past the 1.0 bound
        assert sum(sample["buckets"].values()) == sample["count"]
        assert sample["buckets"]["+Inf"] == 0

    # GPU layer: caches, CUs, RDMA (2 chiplets => remote traffic).
    assert sum(s["value"] for s in
               snap["rtm_cache_hits_total"]["samples"]) > 0
    assert sum(s["value"] for s in
               snap["rtm_cu_wgs_completed_total"]["samples"]) > 0
    rdma_components = {s["labels"]["component"] for s in
                       snap["rtm_rdma_forwarded_total"]["samples"]}
    assert any("RDMA" in name for name in rdma_components)

    # Monitor-overhead layer: per-hook-position time and count.
    by_pos = {s["labels"]["position"]: s["value"] for s in
              snap["rtm_hook_callbacks_total"]["samples"]}
    assert by_pos[HookPos.BEFORE_EVENT.value] == events
    assert by_pos[HookPos.AFTER_EVENT.value] == events
    assert by_pos[HookPos.PORT_DELIVER.value] > 0
    seconds_by_pos = {s["labels"]["position"]: s["value"] for s in
                      snap["rtm_hook_callback_seconds_total"]["samples"]}
    assert seconds_by_pos[HookPos.BEFORE_EVENT.value] > 0


def test_exposition_during_run_includes_required_families(platform):
    """The acceptance-criteria family list, from the exposition text."""
    sm = SimMetrics(platform.simulation)
    sm.start()
    assert platform.run()
    text = expose(sm.registry)
    for family in ("rtm_engine_events_total",
                   "rtm_buffer_occupancy_ratio",
                   "rtm_cache_hits_total",
                   "rtm_rdma_inflight",
                   "rtm_hook_callback_seconds_total"):
        assert family in text, family
    sm.stop()


def test_shared_registry(platform):
    """SimMetrics can publish into an externally owned registry."""
    reg = MetricRegistry()
    reg.counter("my_own_total").inc()
    sm = SimMetrics(platform.simulation, reg)
    assert sm.registry is reg
    sm.start()
    platform.simulation.engine.run_until(1e-9)
    sm.stop()
    assert "my_own_total" in reg.names
    assert "rtm_engine_events_total" in reg.names


def test_stop_preserves_final_totals(platform):
    sm = SimMetrics(platform.simulation)
    sm.start()
    assert platform.run()
    sm.stop()
    # The collector is gone, but the last collection ran at stop().
    snap = sm.registry.snapshot()
    assert snap["rtm_engine_events_total"]["samples"][0]["value"] == \
        platform.simulation.engine.event_count
