"""Tests for the benchmark workloads: trace shape, determinism, and
end-to-end completion on the simulated platform."""

import pytest

from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.gpu.mem import CACHE_LINE_SIZE
from repro.workloads import (
    AES,
    BFS,
    FIR,
    Im2Col,
    KMeans,
    MatMul,
    StoreStorm,
    SUITE,
    mix,
    suite_small,
)


def _trace(workload, wg=0, wf=0):
    return list(workload.kernel().program(wg, wf))


def _kinds(trace):
    return [op[0] for op in trace]


# ------------------------------------------------------------- generic
@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_default_constructible(name):
    wl = SUITE[name]()
    k = wl.kernel()
    assert k.num_workgroups > 0
    assert k.wavefronts_per_wg > 0
    assert wl.input_bytes() >= 0
    assert wl.output_bytes() >= 0


@pytest.mark.parametrize("name", sorted(SUITE))
def test_traces_are_deterministic(name):
    wl_a, wl_b = SUITE[name](), SUITE[name]()
    assert _trace(wl_a, 1, 1) == _trace(wl_b, 1, 1)


@pytest.mark.parametrize("name", sorted(SUITE))
def test_traces_contain_valid_ops(name):
    wl = suite_small()[name]
    for wg, wf in [(0, 0), (1, 2)]:
        for op in wl.kernel().program(wg, wf):
            assert op[0] in ("load", "store", "sload", "compute")
            if op[0] == "compute":
                assert op[1] > 0
            else:
                assert op[1] >= 0      # address
                assert op[2] > 0        # size


def test_mix_is_deterministic_and_spreads():
    assert mix(1, 2) == mix(1, 2)
    values = {mix(i) % 1024 for i in range(256)}
    assert len(values) > 128  # decent spread


# ------------------------------------------------------------- per-workload
def test_fir_is_streaming():
    fir = FIR(num_samples=1024)
    trace = _trace(fir)
    loads = [op for op in trace if op[0] == "load"]
    # Sequential line-sized reads dominate.
    line_loads = [op for op in loads if op[2] == CACHE_LINE_SIZE]
    assert len(line_loads) >= len(loads) // 2
    stores = [op for op in trace if op[0] == "store"]
    addrs = [op[1] for op in stores]
    assert addrs == sorted(addrs)  # in-order output stream


def test_fir_covers_all_samples():
    fir = FIR(num_samples=4096, wavefronts_per_wg=4,
              elements_per_wavefront=64)
    assert fir.num_workgroups * 4 * 64 >= 4096


def test_im2col_gathers_are_strided():
    wl = Im2Col.scaled(batch=4)
    trace = _trace(wl)
    loads = [op for op in trace if op[0] == "load"]
    # Window rows are kernel_size words wide.
    assert all(op[2] == wl.kernel_size * 4 for op in loads)
    # Consecutive window-row reads are image-row strided.
    deltas = {loads[i + 1][1] - loads[i][1]
              for i in range(min(len(loads), wl.kernel_size) - 1)}
    assert wl.image_width * 4 in deltas


def test_im2col_paper_case_study_parameters():
    wl = Im2Col.paper_case_study()
    assert (wl.image_width, wl.image_height, wl.channels, wl.batch) \
        == (24, 24, 6, 640)
    assert wl.out_cols == 22 * 22


def test_matmul_b_reads_are_column_strided():
    wl = MatMul(n=64, tile=16)
    b_base = 64 * 64 * 4
    trace = _trace(wl)
    b_loads = [op for op in trace
               if op[0] == "load" and op[1] >= b_base]
    assert b_loads
    deltas = [b_loads[i + 1][1] - b_loads[i][1]
              for i in range(min(3, len(b_loads) - 1))]
    assert any(d >= 64 * 4 for d in deltas)  # stride >= full row


def test_matmul_rejects_bad_tile():
    with pytest.raises(ValueError):
        MatMul(n=100, tile=16)


def test_kmeans_centroids_are_hot_scalar_traffic():
    wl = KMeans(num_points=256)
    trace = _trace(wl)
    centroid_base = wl.num_points * wl.num_features * 4
    hot_touches = [op for op in trace
                   if op[0] == "sload" and op[1] == centroid_base]
    assert len(hot_touches) > 1  # shared table, touched repeatedly


def test_bfs_neighbour_reads_are_scattered():
    wl = BFS(num_vertices=4096)
    trace = _trace(wl)
    word_loads = [op[1] for op in trace
                  if op[0] == "load" and op[2] == 4]
    assert len(word_loads) > 4
    assert word_loads != sorted(word_loads)  # not sequential


def test_aes_is_compute_heavy():
    wl = AES(num_blocks=256)
    trace = _trace(wl)
    compute = sum(op[1] for op in trace if op[0] == "compute")
    mem_ops = sum(1 for op in trace if op[0] != "compute")
    assert compute > mem_ops  # cycles dominated by compute


@pytest.mark.parametrize("cls,kwargs", [
    (FIR, {"num_samples": 0}),
    (Im2Col, {"batch": 0}),
    (KMeans, {"num_points": 0}),
    (BFS, {"num_vertices": 0}),
    (AES, {"num_blocks": 0}),
])
def test_invalid_sizes_rejected(cls, kwargs):
    with pytest.raises(ValueError):
        cls(**kwargs)


# ------------------------------------------------------------- end-to-end
@pytest.mark.parametrize("name", ["fir", "kmeans", "matmul"])
def test_small_suite_completes_on_platform(name):
    wl = suite_small()[name]
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    run = wl.enqueue(platform.driver)
    assert platform.run()
    assert run.done
    assert run.kernels[0].completed == run.kernels[0].total


def test_enqueue_includes_copies():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    wl = FIR(num_samples=1024)
    run = wl.enqueue(platform.driver)
    assert len(run.copies) == 2
    assert platform.run()
    assert all(c.done for c in run.copies)


def test_storestorm_has_trigger_config():
    cfg = StoreStorm.trigger_config(buggy=True)
    assert cfg.l2_write_buffer_bug
    cfg2 = StoreStorm.trigger_config(buggy=False)
    assert not cfg2.l2_write_buffer_bug
