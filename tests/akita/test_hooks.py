"""Tests for the hook system and its engine integration."""

from repro.akita import (
    CallbackEvent,
    Engine,
    HookCtx,
    HookPos,
    Hookable,
)


def test_hookable_attach_invoke_remove():
    h = Hookable()
    seen = []
    hook = seen.append
    h.accept_hook(hook)
    assert h.num_hooks == 1
    ctx = HookCtx(domain=h, now=1.0, pos=HookPos.BEFORE_EVENT, item="x")
    h.invoke_hooks(ctx)
    assert seen == [ctx]
    h.remove_hook(hook)
    h.invoke_hooks(ctx)
    assert len(seen) == 1


def test_multiple_hooks_all_fire_in_order():
    h = Hookable()
    order = []
    h.accept_hook(lambda ctx: order.append("first"))
    h.accept_hook(lambda ctx: order.append("second"))
    h.invoke_hooks(HookCtx(h, 0.0, HookPos.AFTER_EVENT))
    assert order == ["first", "second"]


def test_engine_hooks_see_events_and_lifecycle():
    engine = Engine()
    log = []
    engine.accept_hook(lambda ctx: log.append((ctx.pos, ctx.item)))
    engine.schedule(CallbackEvent(1.0, lambda e: None))
    engine.run()
    positions = [pos for pos, _ in log]
    assert positions[0] is HookPos.ENGINE_START
    assert HookPos.BEFORE_EVENT in positions
    assert HookPos.AFTER_EVENT in positions
    assert positions[-1] is HookPos.ENGINE_DRY
    events = [item for pos, item in log if pos is HookPos.BEFORE_EVENT]
    assert isinstance(events[0], CallbackEvent)


def test_pause_continue_hooks_fire():
    engine = Engine()
    positions = []
    engine.accept_hook(lambda ctx: positions.append(ctx.pos))
    engine.pause()
    engine.continue_()
    assert positions == [HookPos.ENGINE_PAUSE, HookPos.ENGINE_CONTINUE]


def test_hook_can_count_event_rate():
    """The pattern a monitoring tool uses: count events via a hook."""
    engine = Engine()
    counter = {"n": 0}

    def hook(ctx):
        if ctx.pos is HookPos.AFTER_EVENT:
            counter["n"] += 1

    engine.accept_hook(hook)
    for i in range(10):
        engine.schedule(CallbackEvent(float(i + 1), lambda e: None))
    engine.run()
    assert counter["n"] == 10
    assert engine.event_count == 10
