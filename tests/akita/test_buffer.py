"""Tests for the bounded buffer, including hypothesis invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.akita import Buffer, BufferError_, ConfigurationError


def test_requires_positive_capacity():
    with pytest.raises(ConfigurationError):
        Buffer("b", 0)
    with pytest.raises(ConfigurationError):
        Buffer("b", -3)


def test_push_pop_fifo():
    buf = Buffer("b", 3)
    buf.push(1)
    buf.push(2)
    buf.push(3)
    assert [buf.pop(), buf.pop(), buf.pop()] == [1, 2, 3]


def test_push_full_raises():
    buf = Buffer("b", 1)
    buf.push("x")
    assert not buf.can_push()
    with pytest.raises(BufferError_):
        buf.push("y")


def test_pop_empty_raises():
    buf = Buffer("b", 1)
    with pytest.raises(BufferError_):
        buf.pop()


def test_peek_returns_oldest_without_removal():
    buf = Buffer("b", 2)
    assert buf.peek() is None
    buf.push("a")
    buf.push("b")
    assert buf.peek() == "a"
    assert buf.size == 2


def test_fullness_and_free_slots():
    buf = Buffer("b", 4)
    assert buf.fullness == 0.0
    assert buf.free_slots == 4
    buf.push(1)
    buf.push(2)
    assert buf.fullness == 0.5
    assert buf.free_slots == 2


def test_remove_specific_item():
    buf = Buffer("b", 4)
    buf.push("a")
    buf.push("b")
    buf.push("c")
    buf.remove("b")
    assert list(buf) == ["a", "c"]


def test_clear():
    buf = Buffer("b", 2)
    buf.push(1)
    buf.clear()
    assert buf.size == 0


def test_name_propagates():
    buf = Buffer("GPU[0].SA[1].Port.Buf", 8)
    assert buf.name == "GPU[0].SA[1].Port.Buf"


@given(st.lists(st.sampled_from(["push", "pop"]), max_size=300),
       st.integers(min_value=1, max_value=16))
def test_buffer_invariants_under_random_ops(ops, capacity):
    """0 <= size <= capacity always; FIFO order is preserved."""
    buf = Buffer("b", capacity)
    model = []
    counter = 0
    for op in ops:
        if op == "push" and buf.can_push():
            buf.push(counter)
            model.append(counter)
            counter += 1
        elif op == "pop" and buf.size > 0:
            assert buf.pop() == model.pop(0)
        assert 0 <= buf.size <= capacity
        assert buf.size == len(model)
        assert buf.free_slots == capacity - len(model)
        assert (buf.fullness == 1.0) == (not buf.can_push())
    assert list(buf) == model
