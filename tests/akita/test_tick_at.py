"""Tests for tick_at / tick_later scheduling semantics."""

import pytest

from repro.akita import Engine, TickingComponent


class _Probe(TickingComponent):
    def __init__(self, engine, progress_plan=None):
        super().__init__("Probe", engine)
        self.tick_times = []
        self.progress_plan = progress_plan or []

    def tick(self):
        self.tick_times.append(self.engine.now)
        if self.progress_plan:
            return self.progress_plan.pop(0)
        return False


def test_tick_at_schedules_future_wakeup():
    engine = Engine()
    probe = _Probe(engine)
    probe.tick_at(100e-9)
    assert not probe.asleep
    engine.run()
    assert probe.tick_times == [pytest.approx(100e-9)]


def test_tick_at_in_past_clamps_to_next_cycle():
    engine = Engine()
    probe = _Probe(engine)
    engine.schedule(
        __import__("repro.akita", fromlist=["CallbackEvent"])
        .CallbackEvent(50e-9, lambda e: probe.tick_at(10e-9)))
    engine.run()
    assert probe.tick_times == [pytest.approx(51e-9)]


def test_earlier_tick_overrides_later_one():
    engine = Engine()
    probe = _Probe(engine)
    probe.tick_at(100e-9)
    probe.tick_later()  # next cycle (1 ns) is earlier: must win
    engine.run()
    # Woken at 1 ns; the stale 100 ns event still fires but is a
    # harmless no-progress tick.
    assert probe.tick_times[0] == pytest.approx(1e-9)


def test_later_tick_at_is_ignored_when_earlier_pending():
    engine = Engine()
    probe = _Probe(engine)
    probe.tick_later()
    probe.tick_at(100e-9)  # ignored: earlier tick pending
    engine.run_until(50e-9)
    assert len(probe.tick_times) == 1
    engine.run()
    assert len(probe.tick_times) == 1  # no stale event was created


def test_stale_tick_is_harmless_after_progress():
    engine = Engine()
    probe = _Probe(engine, progress_plan=[True, True, False])
    probe.tick_at(10e-9)
    probe.tick_later()  # earlier; the 10 ns event becomes stale
    engine.run()
    # Ticks at 1, 2, 3 ns (progress plan) and the stale 10 ns wakeup.
    assert probe.tick_times[:3] == [pytest.approx(t * 1e-9)
                                    for t in (1, 2, 3)]


def test_asleep_reflects_scheduling_state():
    engine = Engine()
    probe = _Probe(engine)
    assert probe.asleep
    probe.tick_later()
    assert not probe.asleep
    engine.run()
    assert probe.asleep
