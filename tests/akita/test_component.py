"""Tests for components and the tick/sleep/wake discipline."""

import pytest

from repro.akita import (
    Component,
    DirectConnection,
    Engine,
    GHZ,
    Msg,
    TickEvent,
    TickingComponent,
)


class _Counter(TickingComponent):
    """Ticks `budget` times then sleeps."""

    def __init__(self, name, engine, budget, freq=GHZ):
        super().__init__(name, engine, freq)
        self.budget = budget
        self.work_done = 0

    def tick(self):
        if self.work_done >= self.budget:
            return False
        self.work_done += 1
        return True


def test_invalid_component_name_rejected():
    engine = Engine()
    with pytest.raises(ValueError):
        Component("bad name!", engine)
    with pytest.raises(ValueError):
        Component("", engine)


def test_indexed_names_accepted():
    engine = Engine()
    c = Component("GPU[1].SA[3].L1VCache[0]", engine)
    assert c.name == "GPU[1].SA[3].L1VCache[0]"


def test_duplicate_port_name_rejected():
    engine = Engine()
    c = Component("C", engine)
    c.add_port("In")
    with pytest.raises(ValueError):
        c.add_port("In")


def test_port_lookup():
    engine = Engine()
    c = Component("C", engine)
    p = c.add_port("Top", 8)
    assert c.port("Top") is p
    assert c.ports == [p]
    assert p.buf.capacity == 8


def test_ticking_component_ticks_until_no_progress():
    engine = Engine()
    c = _Counter("C", engine, budget=5)
    c.tick_later()
    engine.run()
    assert c.work_done == 5
    # Budget ticks + one final no-progress tick that put it to sleep.
    assert c.tick_count == 6
    assert c.asleep


def test_ticks_land_on_cycle_boundaries():
    engine = Engine()
    c = _Counter("C", engine, budget=3, freq=1e9)
    c.tick_later()
    engine.run()
    assert engine.now == pytest.approx(4e-9)


def test_tick_later_is_idempotent():
    engine = Engine()
    c = _Counter("C", engine, budget=1)
    c.tick_later()
    c.tick_later()
    c.tick_later()
    engine.run()
    assert c.work_done == 1
    assert c.tick_count == 2  # one productive + one sleep tick, no dups


def test_duplicate_tick_event_same_cycle_is_ignored():
    engine = Engine()
    c = _Counter("C", engine, budget=10)
    engine.schedule(TickEvent(1e-9, c))
    engine.schedule(TickEvent(1e-9, c))
    engine.run_until(1e-9)
    assert c.work_done == 1


def test_sleeping_component_wakes_on_message():
    engine = Engine()

    class Receiver(TickingComponent):
        def __init__(self, name, engine):
            super().__init__(name, engine)
            self.inp = self.add_port("In", 4)
            self.received = 0

        def tick(self):
            if self.inp.retrieve_incoming() is not None:
                self.received += 1
                return True
            return False

    class Sender(Component):
        def __init__(self, name, engine):
            super().__init__(name, engine)
            self.out = self.add_port("Out", 4)

        def handle(self, event):
            pass

    recv = Receiver("R", engine)
    send = Sender("S", engine)
    conn = DirectConnection("Conn", engine)
    conn.plug_in(send.out)
    conn.plug_in(recv.inp)

    recv.tick_later()
    engine.run()
    assert recv.asleep  # nothing to do: sleeping

    assert send.out.send(Msg(dst=recv.inp))
    engine.run()  # delivery wakes the receiver
    assert recv.received == 1


def test_lower_frequency_means_longer_cycles():
    engine = Engine()
    slow = _Counter("Slow", engine, budget=2, freq=0.5e9)  # 2 ns period
    slow.tick_later()
    engine.run()
    assert engine.now == pytest.approx(6e-9)  # 3 ticks at 2ns, start at 2ns
