"""Tests for naming utilities and cycle arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.akita import naming, next_tick, period, this_tick, cycles_to_seconds


# ---------------------------------------------------------------- naming
def test_indexed():
    assert naming.indexed("SA", 3) == "SA[3]"
    assert naming.indexed("X", 1, 2) == "X[1][2]"
    assert naming.indexed("Plain") == "Plain"


def test_join():
    assert naming.join("GPU[0]", "SA[1]", "CU[2]") == "GPU[0].SA[1].CU[2]"
    assert naming.join("", "A", "") == "A"


def test_validate_accepts_paper_style_names():
    naming.validate("GPU[1].SA[15].L1VROB[0].TopPort")
    naming.validate("Driver")


@pytest.mark.parametrize("bad", ["", "1abc", "a b", "a.[3]", "a..b", "x[-1]"])
def test_validate_rejects_bad_names(bad):
    with pytest.raises(ValueError):
        naming.validate(bad)


def test_tokenize_and_split_indexed():
    toks = naming.tokenize("GPU[1].SA[3].L1VCache[0]")
    assert toks == ["GPU[1]", "SA[3]", "L1VCache[0]"]
    assert naming.split_indexed("SA[3]") == ("SA", [3])
    assert naming.split_indexed("Driver") == ("Driver", [])


def test_parent():
    assert naming.parent("A.B.C") == "A.B"
    assert naming.parent("A") == ""


# ---------------------------------------------------------------- ticker
def test_period():
    assert period(1e9) == 1e-9


def test_next_tick_from_zero():
    assert next_tick(0.0, 1e9) == pytest.approx(1e-9)


def test_next_tick_from_boundary_advances():
    t = next_tick(5e-9, 1e9)
    assert t == pytest.approx(6e-9)


def test_next_tick_mid_cycle():
    t = next_tick(5.4e-9, 1e9)
    assert t == pytest.approx(6e-9)


def test_this_tick():
    assert this_tick(5e-9, 1e9) == pytest.approx(5e-9)
    assert this_tick(5.2e-9, 1e9) == pytest.approx(6e-9)


def test_cycles_to_seconds():
    assert cycles_to_seconds(1000, 1e9) == pytest.approx(1e-6)


@given(st.integers(min_value=0, max_value=10_000_000),
       st.sampled_from([1e9, 0.5e9, 2e9, 1.4e9]))
def test_next_tick_is_strictly_increasing_along_grid(cycle, freq):
    """Repeated next_tick from a grid point walks one cycle at a time."""
    now = cycle / freq
    nxt = next_tick(now, freq)
    assert nxt > now
    assert nxt == pytest.approx((cycle + 1) / freq)
