"""Tests for ports and direct connections: latency, backpressure, wakeups."""

import pytest

from repro.akita import (
    Component,
    DirectConnection,
    Engine,
    Msg,
    Port,
    PortError,
    TickingComponent,
)


class _Sink(Component):
    """A component that never consumes messages (creates backpressure)."""

    def __init__(self, name, engine, buf_capacity=2):
        super().__init__(name, engine)
        self.inp = self.add_port("In", buf_capacity)

    def handle(self, event):
        pass


class _Producer(Component):
    def __init__(self, name, engine):
        super().__init__(name, engine)
        self.out = self.add_port("Out", 2)

    def handle(self, event):
        pass


def _wire(engine, *ports, latency=1e-9):
    conn = DirectConnection("Conn", engine, latency)
    for p in ports:
        conn.plug_in(p)
    return conn


def test_port_names_are_hierarchical():
    engine = Engine()
    sink = _Sink("Sys.Sink", engine)
    assert sink.inp.name == "Sys.Sink.In"
    assert sink.inp.buf.name == "Sys.Sink.In.Buf"


def test_send_without_connection_raises():
    engine = Engine()
    prod = _Producer("P", engine)
    with pytest.raises(PortError):
        prod.out.send(Msg())


def test_double_connect_raises():
    engine = Engine()
    prod = _Producer("P", engine)
    c1 = DirectConnection("C1", engine)
    c1.plug_in(prod.out)
    c2 = DirectConnection("C2", engine)
    with pytest.raises(PortError):
        c2.plug_in(prod.out)


def test_message_delivered_after_latency():
    engine = Engine()
    prod = _Producer("P", engine)
    sink = _Sink("S", engine)
    _wire(engine, prod.out, sink.inp, latency=3e-9)
    msg = Msg(dst=sink.inp)
    assert prod.out.send(msg)
    assert sink.inp.buf.size == 0
    engine.run()
    assert engine.now == pytest.approx(3e-9)
    assert sink.inp.peek_incoming() is msg
    assert msg.src is prod.out


def test_backpressure_counts_inflight_messages():
    engine = Engine()
    prod = _Producer("P", engine)
    sink = _Sink("S", engine, buf_capacity=2)
    _wire(engine, prod.out, sink.inp)
    assert prod.out.send(Msg(dst=sink.inp))
    assert prod.out.send(Msg(dst=sink.inp))
    # Two slots reserved by in-flight messages: a third send must fail.
    third = Msg(dst=sink.inp)
    assert not prod.out.can_send(third)
    assert prod.out.send(third) is False
    engine.run()
    assert sink.inp.buf.size == 2


def test_retrieve_frees_slot_and_allows_new_send():
    engine = Engine()
    prod = _Producer("P", engine)
    sink = _Sink("S", engine, buf_capacity=1)
    _wire(engine, prod.out, sink.inp)
    assert prod.out.send(Msg(dst=sink.inp))
    engine.run()
    assert not prod.out.can_send(Msg(dst=sink.inp))
    got = sink.inp.retrieve_incoming()
    assert got is not None
    assert prod.out.can_send(Msg(dst=sink.inp))


def test_retrieve_empty_returns_none():
    engine = Engine()
    sink = _Sink("S", engine)
    assert sink.inp.retrieve_incoming() is None


def test_in_order_delivery_per_pair():
    engine = Engine()
    prod = _Producer("P", engine)
    sink = _Sink("S", engine, buf_capacity=8)
    _wire(engine, prod.out, sink.inp)
    msgs = [Msg(dst=sink.inp) for _ in range(5)]
    for m in msgs:
        assert prod.out.send(m)
    engine.run()
    received = []
    while (m := sink.inp.retrieve_incoming()) is not None:
        received.append(m)
    assert received == msgs


class _RetryingProducer(TickingComponent):
    """Sends `total` messages, retrying under backpressure, then sleeps."""

    def __init__(self, name, engine, dst_port, total):
        super().__init__(name, engine)
        self.out = self.add_port("Out", 2)
        self.dst_port = dst_port
        self.remaining = total

    def tick(self):
        if self.remaining == 0:
            return False
        if self.out.send(Msg(dst=self.dst_port)):
            self.remaining -= 1
            return True
        return False


class _SlowConsumer(TickingComponent):
    """Consumes one message every `every` cycles."""

    def __init__(self, name, engine, every=4, buf_capacity=2):
        super().__init__(name, engine)
        self.inp = self.add_port("In", buf_capacity)
        self.every = every
        self._count = 0
        self.consumed = 0

    def tick(self):
        self._count += 1
        if self._count % self.every != 0:
            return True  # keep counting cycles while messages pending
        if self.inp.retrieve_incoming() is not None:
            self.consumed += 1
            return True
        return False


def test_notify_available_wakes_blocked_sender():
    """A producer blocked on a full buffer must finish once the consumer
    drains — the no-lost-wakeup property that keeps simulations live."""
    engine = Engine()
    consumer = _SlowConsumer("C", engine, every=3, buf_capacity=1)
    producer = _RetryingProducer("P", engine, consumer.inp, total=10)
    _wire(engine, producer.out, consumer.inp)
    producer.tick_later()
    engine.run()
    assert producer.remaining == 0
    assert consumer.consumed == 10


def test_connection_counts_messages():
    engine = Engine()
    prod = _Producer("P", engine)
    sink = _Sink("S", engine, buf_capacity=4)
    conn = _wire(engine, prod.out, sink.inp)
    for _ in range(3):
        prod.out.send(Msg(dst=sink.inp))
    assert conn.msg_count == 3
