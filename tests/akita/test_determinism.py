"""Same-timestamp scheduling must not depend on process history.

Event ids come from a process-global counter shared by every engine in
the process (and, under the fleet, by monitor threads).  If the queue
broke ties on those ids, two runs of the *same* simulation would order
same-tick events differently whenever anything else in the process had
minted events in between — and a sharded run could never be checked
for equivalence against a monolithic one.  The queue therefore breaks
ties with a per-queue insertion sequence, which depends only on what
was pushed into *this* queue and in what order.
"""

from repro.akita import Engine, Event, EventQueue, TickEvent


class _Recorder:
    def __init__(self):
        self.seen = []

    def handle(self, event):
        self.seen.append(event)


class _Tagged(Event):
    __slots__ = ("tag",)

    def __init__(self, time, handler, tag):
        super().__init__(time, handler)
        self.tag = tag


class _TaggedTick(TickEvent):
    __slots__ = ("tag",)

    def __init__(self, time, handler, tag):
        super().__init__(time, handler)
        self.tag = tag


def _pollute_global_ids(n):
    """Mint events on the side, advancing the global id counter the way
    an unrelated engine (or a monitor thread) in the process would."""
    h = _Recorder()
    for _ in range(n):
        Event(0.0, h)


def _storm(queue, handler, pollution):
    """Push a same-timestamp storm, interleaving id pollution so the
    global ids of 'identical' events differ run to run."""
    events = []
    for i in range(64):
        _pollute_global_ids(pollution * (i % 3))
        cls = _TaggedTick if i % 4 == 0 else _Tagged
        event = cls(1.0, handler, i)
        queue.push(event)
        events.append(event)
    return events


def test_same_time_pops_follow_insertion_order_per_class():
    h = _Recorder()
    order_by_pollution = []
    for pollution in (0, 7):
        q = EventQueue()
        _storm(q, h, pollution)
        popped = [q.pop().tag for _ in range(len(q))]
        order_by_pollution.append(popped)
    # Identical push sequences pop identically, no matter how the
    # process-global id counter moved in between.
    assert order_by_pollution[0] == order_by_pollution[1]
    # Within the same timestamp: every primary before every secondary,
    # each class in insertion order.
    popped = order_by_pollution[0]
    primaries = [t for t in popped if t % 4 != 0]
    secondaries = [t for t in popped if t % 4 == 0]
    assert popped == primaries + secondaries
    assert primaries == sorted(primaries)
    assert secondaries == sorted(secondaries)


def test_engine_handles_same_time_storm_deterministically():
    orders = []
    for pollution in (0, 13):
        engine = Engine()
        recorder = _Recorder()
        _pollute_global_ids(pollution)
        for i in range(32):
            _pollute_global_ids(pollution)
            engine.schedule(_Tagged(2.5e-9, recorder, i))
        engine.run()
        orders.append([e.tag for e in recorder.seen])
    assert orders[0] == orders[1] == list(range(32))


def test_tie_break_is_per_queue_not_global():
    """Two queues filled in lockstep stay independent: pushing into one
    never perturbs ordering in the other."""
    h = _Recorder()
    qa, qb = EventQueue(), EventQueue()
    for i in range(16):
        qa.push(_Tagged(1.0, h, i))
        # Interleave pushes into the sibling queue.
        for _ in range(3):
            qb.push(_Tagged(1.0, h, -1))
    assert [qa.pop().tag for _ in range(len(qa))] == list(range(16))
