"""Tests for events and the event queue ordering rules."""

import pytest
from hypothesis import given, strategies as st

from repro.akita import Event, EventQueue, TickEvent


class _Recorder:
    def __init__(self):
        self.seen = []

    def handle(self, event):
        self.seen.append(event)


def test_event_ids_are_monotonic():
    h = _Recorder()
    a = Event(1.0, h)
    b = Event(1.0, h)
    assert b.id > a.id


def test_tick_event_is_secondary():
    h = _Recorder()
    assert TickEvent(1.0, h).secondary is True
    assert Event(1.0, h).secondary is False


def test_queue_orders_by_time():
    h = _Recorder()
    q = EventQueue()
    late = Event(2.0, h)
    early = Event(1.0, h)
    q.push(late)
    q.push(early)
    assert q.pop() is early
    assert q.pop() is late


def test_primary_before_secondary_at_same_time():
    h = _Recorder()
    q = EventQueue()
    secondary = TickEvent(1.0, h)
    primary = Event(1.0, h)
    q.push(secondary)
    q.push(primary)
    assert q.pop() is primary
    assert q.pop() is secondary


def test_insertion_order_breaks_ties():
    h = _Recorder()
    q = EventQueue()
    first = Event(1.0, h)
    second = Event(1.0, h)
    q.push(first)
    q.push(second)
    assert q.pop() is first
    assert q.pop() is second


def test_peek_and_next_time():
    h = _Recorder()
    q = EventQueue()
    assert q.peek() is None
    assert q.next_time() is None
    e = Event(3.5, h)
    q.push(e)
    assert q.peek() is e
    assert q.next_time() == 3.5
    assert len(q) == 1


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()


def test_clear():
    h = _Recorder()
    q = EventQueue()
    q.push(Event(1.0, h))
    q.clear()
    assert len(q) == 0


@given(st.lists(st.floats(min_value=0, max_value=1e3,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
def test_queue_pops_in_nondecreasing_time_order(times):
    h = _Recorder()
    q = EventQueue()
    for t in times:
        q.push(Event(t, h))
    popped = [q.pop().time for _ in range(len(times))]
    assert popped == sorted(popped)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=10,
                                    allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=100))
def test_queue_total_order_is_time_then_class_then_id(specs):
    h = _Recorder()
    q = EventQueue()
    events = [Event(t, h, secondary=s) for t, s in specs]
    for e in events:
        q.push(e)
    popped = [q.pop() for _ in range(len(events))]
    keys = [(e.time, e.secondary, e.id) for e in popped]
    assert keys == sorted(keys)
