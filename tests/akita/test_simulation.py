"""Tests for the Simulation container: registry, completion, hang/kickstart."""

import threading
import time

import pytest

from repro.akita import (
    CallbackEvent,
    Component,
    Engine,
    Simulation,
    TickingComponent,
)


class _Noop(Component):
    def handle(self, event):
        pass


def test_register_and_lookup_components():
    sim = Simulation()
    c = _Noop("GPU[0].CU[0]", sim.engine)
    sim.register_component(c)
    assert sim.component("GPU[0].CU[0]") is c
    assert sim.has_component("GPU[0].CU[0]")
    assert not sim.has_component("nope")
    assert sim.component_names == ["GPU[0].CU[0]"]


def test_duplicate_registration_rejected():
    sim = Simulation()
    sim.register_component(_Noop("C", sim.engine))
    with pytest.raises(ValueError):
        sim.register_component(_Noop("C", sim.engine))


def test_default_completion_is_dry_queue():
    sim = Simulation()
    fired = []
    sim.engine.schedule(CallbackEvent(1.0, lambda e: fired.append(e.time)))
    assert sim.run()
    assert sim.completed
    assert sim.run_state == "completed"
    assert fired == [1.0]


def test_explicit_completion_check():
    sim = Simulation()
    state = {"done": False}
    sim.set_completion_check(lambda: state["done"])

    def finish(event):
        state["done"] = True

    sim.engine.schedule(CallbackEvent(1.0, finish))
    assert sim.run()
    assert sim.completed


def test_hang_detected_when_dry_but_incomplete():
    sim = Simulation()
    sim.set_completion_check(lambda: False)  # never completes
    sim.engine.schedule(CallbackEvent(1.0, lambda e: None))
    assert sim.run(hang_wait=0.0) is False
    assert not sim.completed
    assert sim.run_state == "hung"


def test_kickstart_resumes_hung_simulation():
    """Mimics the paper's Tick-button + Kick Start debugging flow."""
    sim = Simulation()
    state = {"done": False}
    sim.set_completion_check(lambda: state["done"])
    sim.engine.schedule(CallbackEvent(1.0, lambda e: None))

    result = {}

    def run_sim():
        result["ok"] = sim.run(hang_wait=30.0)

    t = threading.Thread(target=run_sim)
    t.start()
    time.sleep(0.1)  # let it park on the dry queue
    assert sim.run_state == "hung"

    # Monitor thread: schedule repair work, then kick start.
    def repair(event):
        state["done"] = True

    sim.engine.schedule(CallbackEvent(sim.engine.now + 1.0, repair))
    sim.kickstart()
    t.join(timeout=10)
    assert not t.is_alive()
    assert result["ok"] is True
    assert sim.run_state == "completed"


def test_abort_terminates_run():
    sim = Simulation()
    sim.set_completion_check(lambda: False)

    result = {}

    def run_sim():
        result["ok"] = sim.run(hang_wait=30.0)

    t = threading.Thread(target=run_sim)
    t.start()
    time.sleep(0.05)
    sim.abort()
    t.join(timeout=10)
    assert not t.is_alive()
    assert result["ok"] is False
    assert sim.run_state == "aborted"


def test_ticking_component_in_simulation():
    sim = Simulation()

    class Worker(TickingComponent):
        def __init__(self):
            super().__init__("W", sim.engine)
            self.left = 10

        def tick(self):
            if self.left == 0:
                return False
            self.left -= 1
            return True

    w = Worker()
    sim.register_component(w)
    sim.set_completion_check(lambda: w.left == 0)
    w.tick_later()
    assert sim.run()
    assert w.left == 0


def test_now_tracks_engine():
    sim = Simulation()
    sim.engine.schedule(CallbackEvent(2.5, lambda e: None))
    sim.run()
    assert sim.now == 2.5
