"""Tests for the serial engine: ordering, pause/continue, hooks, states."""

import threading
import time

import pytest

from repro.akita import (
    CallbackEvent,
    Engine,
    Event,
    HookPos,
    RunState,
    SchedulingError,
)


class _Recorder:
    def __init__(self):
        self.times = []

    def handle(self, event):
        self.times.append(event.time)


def test_engine_starts_idle_at_time_zero():
    engine = Engine()
    assert engine.now == 0.0
    assert engine.run_state == RunState.IDLE
    assert engine.event_count == 0


def test_run_processes_events_in_time_order():
    engine = Engine()
    rec = _Recorder()
    for t in [3.0, 1.0, 2.0]:
        engine.schedule(Event(t, rec))
    engine.run()
    assert rec.times == [1.0, 2.0, 3.0]
    assert engine.now == 3.0
    assert engine.event_count == 3
    assert engine.run_state == RunState.DRY


def test_schedule_in_past_raises():
    engine = Engine()
    rec = _Recorder()
    engine.schedule(Event(5.0, rec))
    engine.run()
    with pytest.raises(SchedulingError):
        engine.schedule(Event(1.0, rec))


def test_schedule_at_now_is_allowed():
    engine = Engine()
    rec = _Recorder()

    def reschedule(event):
        if len(rec.times) < 1:
            rec.times.append(event.time)
            engine.schedule(Event(engine.now, rec))

    engine.schedule(CallbackEvent(1.0, reschedule))
    engine.run()
    assert rec.times == [1.0, 1.0]


def test_handler_can_schedule_future_events():
    engine = Engine()
    seen = []

    def cb(event):
        seen.append(event.time)
        if event.time < 3.0:
            engine.schedule(CallbackEvent(event.time + 1.0, cb))

    engine.schedule(CallbackEvent(1.0, cb))
    engine.run()
    assert seen == [1.0, 2.0, 3.0]


def test_run_can_be_called_again_after_dry():
    """The 'kick start' path: schedule after dry, run again."""
    engine = Engine()
    rec = _Recorder()
    engine.schedule(Event(1.0, rec))
    engine.run()
    engine.schedule(Event(2.0, rec))
    engine.run()
    assert rec.times == [1.0, 2.0]


def test_terminate_prevents_further_processing():
    engine = Engine()
    rec = _Recorder()

    def stop(event):
        rec.times.append(event.time)
        engine.terminate()

    engine.schedule(CallbackEvent(1.0, stop))
    engine.schedule(Event(2.0, rec))
    engine.run()
    assert rec.times == [1.0]
    assert engine.run_state == RunState.ENDED


def test_pause_blocks_simulation_thread_and_continue_releases():
    engine = Engine()
    rec = _Recorder()
    n_events = 2000
    for i in range(n_events):
        engine.schedule(Event(float(i + 1), rec))

    started = threading.Event()

    def run_sim():
        started.set()
        engine.run()

    t = threading.Thread(target=run_sim)
    engine.pause()  # pause before starting: engine parks immediately
    t.start()
    started.wait()
    time.sleep(0.05)
    assert engine.run_state in (RunState.PAUSED, RunState.RUNNING)
    count_at_pause = engine.event_count
    time.sleep(0.05)
    assert engine.event_count == count_at_pause  # frozen while paused
    engine.continue_()
    t.join(timeout=10)
    assert not t.is_alive()
    assert engine.event_count == n_events


def test_pause_hook_and_event_hooks_fire():
    engine = Engine()
    rec = _Recorder()
    positions = []
    engine.accept_hook(lambda ctx: positions.append(ctx.pos))
    engine.schedule(Event(1.0, rec))
    engine.run()
    assert positions[0] == HookPos.ENGINE_START
    assert HookPos.BEFORE_EVENT in positions
    assert HookPos.AFTER_EVENT in positions
    assert positions[-1] == HookPos.ENGINE_DRY


def test_remove_hook():
    engine = Engine()
    rec = _Recorder()
    calls = []
    hook = lambda ctx: calls.append(ctx.pos)  # noqa: E731
    engine.accept_hook(hook)
    engine.remove_hook(hook)
    engine.remove_hook(hook)  # removing twice is a no-op
    engine.schedule(Event(1.0, rec))
    engine.run()
    assert calls == []


def test_run_until_stops_at_time():
    engine = Engine()
    rec = _Recorder()
    for t in [1.0, 2.0, 3.0]:
        engine.schedule(Event(t, rec))
    engine.run_until(2.0)
    assert rec.times == [1.0, 2.0]
    assert engine.pending_event_count == 1


def test_pending_event_count():
    engine = Engine()
    rec = _Recorder()
    assert engine.pending_event_count == 0
    engine.schedule(Event(1.0, rec))
    engine.schedule(Event(2.0, rec))
    assert engine.pending_event_count == 2
