"""Concurrency stress for the engine's external control surface."""

import threading
import time

import pytest

from repro.akita import CallbackEvent, Engine, RunState


def _self_rescheduling_chain(engine, count):
    done = {"n": 0}

    def cb(event):
        done["n"] += 1
        if done["n"] < count:
            engine.schedule(CallbackEvent(event.time + 1.0, cb))

    engine.schedule(CallbackEvent(1.0, cb))
    return done


def test_repeated_pause_continue_under_load():
    engine = Engine()
    done = _self_rescheduling_chain(engine, 50_000)
    thread = threading.Thread(target=engine.run)
    thread.start()
    for _ in range(50):
        engine.pause()
        engine.continue_()
    thread.join(timeout=60)
    assert not thread.is_alive()
    assert done["n"] == 50_000


def test_concurrent_scheduling_from_other_threads():
    engine = Engine()
    hits = []

    def cb(event):
        hits.append(event.time)

    # Pause so externally scheduled events pile up safely, then run.
    engine.pause()
    thread = threading.Thread(target=engine.run)
    thread.start()

    def scheduler(base):
        for i in range(200):
            engine.schedule(CallbackEvent(base + i, cb))

    workers = [threading.Thread(target=scheduler, args=(k * 1000.0 + 1,))
               for k in range(4)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    engine.continue_()
    thread.join(timeout=60)
    assert len(hits) == 800
    assert hits == sorted(hits)  # causal order preserved


def test_terminate_while_paused_releases_thread():
    engine = Engine()
    _self_rescheduling_chain(engine, 1_000_000)
    engine.pause()
    thread = threading.Thread(target=engine.run)
    thread.start()
    time.sleep(0.05)
    engine.terminate()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert engine.run_state == RunState.ENDED


def test_pause_latency_is_bounded_under_load():
    """Pausing takes effect within a handful of events, not seconds."""
    engine = Engine()
    done = _self_rescheduling_chain(engine, 2_000_000)
    thread = threading.Thread(target=engine.run)
    thread.start()
    time.sleep(0.05)
    engine.pause()
    time.sleep(0.01)
    count_a = engine.event_count
    time.sleep(0.1)
    count_b = engine.event_count
    assert count_b == count_a  # fully parked
    engine.terminate()
    thread.join(timeout=10)
