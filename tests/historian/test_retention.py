"""Retention sweeps delete exactly the out-of-policy rows."""

import pytest

from repro.historian import Historian, RetentionPolicy


@pytest.fixture
def store(tmp_path):
    historian = Historian(tmp_path / "historian.db")
    yield historian
    historian.close()


def _ids(store, kind=None):
    return [r["payload"]["i"]
            for r in store.query(kind=kind, limit=0)]


def test_age_policy_prunes_only_stale_rows(store):
    cid = store.begin_campaign("c")
    for i in range(6):
        store.record(cid, "snapshot", {"i": i}, wall=float(i))
    # Keep the last 2 seconds as of now=5: rows with wall < 3 go.
    deleted = store.prune([RetentionPolicy("snapshot", max_age=2.0)],
                          now=5.0)
    assert deleted == {"snapshot": 3}
    assert _ids(store, "snapshot") == [3, 4, 5]


def test_count_policy_keeps_newest_n(store):
    cid = store.begin_campaign("c")
    for i in range(10):
        store.record(cid, "snapshot", {"i": i}, wall=float(i))
    deleted = store.prune([RetentionPolicy("snapshot", max_count=4)])
    assert deleted == {"snapshot": 6}
    assert _ids(store, "snapshot") == [6, 7, 8, 9]


def test_other_kinds_untouched(store):
    cid = store.begin_campaign("c")
    for i in range(5):
        store.record(cid, "snapshot", {"i": i}, wall=float(i))
    store.record(cid, "job", {"i": 100, "state": "completed"},
                 name="j1", wall=0.0)
    store.record(cid, "postmortem", {"i": 200}, name="j1", wall=0.0)
    store.record(cid, "alert", {"i": 300}, wall=0.0)
    deleted = store.prune([RetentionPolicy("snapshot", max_age=1.0,
                                           max_count=1)], now=10.0)
    assert deleted == {"snapshot": 5}
    # Jobs, post-mortems and alerts at wall=0 survive: no policy named
    # them, even though they are far older than the snapshot window.
    assert _ids(store, "job") == [100]
    assert _ids(store, "postmortem") == [200]
    assert _ids(store, "alert") == [300]


def test_combined_age_and_count_policy(store):
    cid = store.begin_campaign("c")
    for i in range(8):
        store.record(cid, "alert", {"i": i}, wall=float(i))
    # Age drops 0..3 (wall < 4); count then trims survivors to 3.
    deleted = store.prune([RetentionPolicy("alert", max_age=4.0,
                                           max_count=3)], now=8.0)
    assert deleted == {"alert": 5}
    assert _ids(store, "alert") == [5, 6, 7]


def test_in_policy_rows_never_deleted(store):
    cid = store.begin_campaign("c")
    for i in range(3):
        store.record(cid, "snapshot", {"i": i}, wall=float(i))
    deleted = store.prune(
        [RetentionPolicy("snapshot", max_age=100.0, max_count=100)],
        now=3.0)
    assert deleted == {}
    assert _ids(store, "snapshot") == [0, 1, 2]


def test_policy_validates_kind():
    with pytest.raises(ValueError):
        RetentionPolicy("banana", max_age=1.0)


def test_prune_flushes_pending_first(tmp_path):
    historian = Historian(tmp_path / "h.db", batch_size=1000,
                          flush_interval=1000.0)
    cid = historian.begin_campaign("c")
    for i in range(4):
        historian.record(cid, "snapshot", {"i": i}, wall=float(i))
    deleted = historian.prune([RetentionPolicy("snapshot",
                                               max_count=1)])
    assert deleted == {"snapshot": 3}
    assert _ids(historian, "snapshot") == [3]
    historian.close()
