"""Tests for the metric alert-rule engine (dedup state machine)."""

import pytest

from repro.historian import MetricRule, RuleEngine
from repro.metrics import MetricRegistry, expose, parse_exposition


def _families(**values):
    return {name: {"type": "gauge", "samples": [({}, float(v))]}
            for name, v in values.items()}


def _labelled(name, samples):
    return {name: {"type": "gauge",
                   "samples": [(labels, float(v))
                               for labels, v in samples]}}


# ------------------------------------------------------------- rules
def test_threshold_fires_and_resolves_once_each():
    rule = MetricRule("jobs", op=">=", threshold=5)
    assert rule.evaluate(_families(jobs=7), 0.0) == "firing"
    assert rule.evaluate(_families(jobs=8), 1.0) is None  # still breaching
    assert rule.evaluate(_families(jobs=9), 2.0) is None
    assert rule.evaluate(_families(jobs=1), 3.0) == "resolved"
    assert rule.evaluate(_families(jobs=1), 4.0) is None
    # Re-arms: a later breach fires again.
    assert rule.evaluate(_families(jobs=7), 5.0) == "firing"
    assert rule.fired_count == 2


def test_threshold_label_subset_matching():
    rule = MetricRule("jobs", labels={"state": "failed"},
                      op=">=", threshold=1)
    families = _labelled("jobs", [({"state": "completed"}, 10),
                                  ({"state": "failed"}, 0)])
    assert rule.evaluate(families, 0.0) is None
    families = _labelled("jobs", [({"state": "completed"}, 10),
                                  ({"state": "failed"}, 2)])
    assert rule.evaluate(families, 1.0) == "firing"
    assert rule.last_value == 2.0


def test_threshold_no_data_is_not_a_breach():
    rule = MetricRule("missing", op=">=", threshold=0)
    assert rule.evaluate(_families(other=1), 0.0) is None
    assert rule.state == "ok"


def test_hold_window():
    rule = MetricRule("x", op=">=", threshold=1, for_seconds=1.0)
    assert rule.evaluate(_families(x=5), 0.0) is None
    assert rule.state == "pending"
    assert rule.evaluate(_families(x=5), 0.5) is None
    assert rule.evaluate(_families(x=0), 0.7) is None  # dip resets
    assert rule.evaluate(_families(x=5), 1.0) is None
    assert rule.evaluate(_families(x=5), 2.1) == "firing"


def test_rate_rule():
    rule = MetricRule("events_total", kind="rate", op=">=",
                      threshold=100.0)
    assert rule.evaluate(_families(events_total=0), 0.0) is None
    # +50 in 1s: below the 100/s bound.
    assert rule.evaluate(_families(events_total=50), 1.0) is None
    # +500 in 1s: breach.
    assert rule.evaluate(_families(events_total=550), 2.0) == "firing"
    assert rule.last_value == pytest.approx(500.0)
    # Counter stalls: rate 0, resolved.
    assert rule.evaluate(_families(events_total=550), 3.0) == "resolved"


def test_absence_rule():
    rule = MetricRule("heartbeat", kind="absence")
    assert rule.evaluate(_families(heartbeat=1), 0.0) is None
    assert rule.evaluate(_families(other=1), 1.0) == "firing"
    assert rule.evaluate(_families(other=1), 2.0) is None
    assert rule.evaluate(_families(heartbeat=1), 3.0) == "resolved"


def test_rule_validation_and_names():
    with pytest.raises(ValueError):
        MetricRule("x", kind="banana")
    with pytest.raises(ValueError):
        MetricRule("x", op="!=")
    assert MetricRule("x", op=">", threshold=2).name == "x > 2"
    assert MetricRule("x", kind="absence").name == "absent(x)"
    labelled = MetricRule("x", labels={"a": "b"}, op=">=", threshold=1)
    assert labelled.name == "x{a=b} >= 1"


def test_rule_works_on_parsed_exposition():
    registry = MetricRegistry()
    registry.gauge("rtm_fleet_jobs", "jobs", ("state",)) \
        .labels("running").set(3)
    rule = MetricRule("rtm_fleet_jobs", labels={"state": "running"},
                      op=">=", threshold=1)
    families = parse_exposition(expose(registry))
    assert rule.evaluate(families, 0.0) == "firing"


# ------------------------------------------------------------- engine
def test_engine_transitions_are_deduplicated_and_sequenced():
    registry = MetricRegistry()
    engine = RuleEngine(registry=registry)
    engine.add(MetricRule("x", op=">=", threshold=5))
    engine.add(MetricRule("y", kind="absence"))

    first = engine.evaluate_all(_families(x=9), 0.0)
    assert [(t["name"], t["state"]) for t in first] == [
        ("x >= 5", "firing"), ("absent(y)", "firing")]
    assert engine.evaluate_all(_families(x=9), 1.0) == []  # dedup
    second = engine.evaluate_all(_families(x=0, y=1), 2.0)
    assert [(t["name"], t["state"]) for t in second] == [
        ("x >= 5", "resolved"), ("absent(y)", "resolved")]

    seqs = [t["seq"] for t in engine.transitions]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert engine.transitions_since(seqs[1]) == engine.transitions[2:]

    text = expose(registry)
    assert 'rtm_alerts_transitions_total{state="firing"} 2' in text
    assert 'rtm_alerts_transitions_total{state="resolved"} 2' in text


def test_engine_add_remove():
    engine = RuleEngine()
    rule = engine.add(MetricRule("x", op=">=", threshold=1))
    assert engine.remove(rule.id)
    assert not engine.remove(rule.id)
    assert engine.rules == []
    assert engine.evaluate_all(_families(x=9)) == []
