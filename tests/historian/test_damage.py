"""Adversarial damage tolerance: the historian degrades, never raises.

Mirrors the journal replay suite's style: truncate the file, flip CRC
bytes, feed it garbage — every read returns what survives and every
write is counted, because a broken historian must not take the fleet
scheduler down with it.
"""

import sqlite3

from repro.historian import Historian, RetentionPolicy


def _seed(path, rows=5):
    historian = Historian(path)
    cid = historian.begin_campaign("c")
    for i in range(rows):
        historian.record(cid, "snapshot", {"i": i})
    historian.record(cid, "job", {"state": "completed"}, name="j1")
    historian.close()


def test_crc_damaged_row_skipped_and_counted(tmp_path):
    path = tmp_path / "h.db"
    _seed(path)
    conn = sqlite3.connect(path)
    conn.execute("UPDATE records SET payload = '{\"i\": 999}'"
                 " WHERE id = 2")  # payload no longer matches its crc
    conn.commit()
    conn.close()

    historian = Historian(path)
    records = historian.query("c", kind="snapshot")
    assert [r["payload"]["i"] for r in records] == [0, 2, 3, 4]
    stats = historian.stats()
    assert stats["corrupt_records"] == 1
    assert stats["degraded"] is False  # damage is per-row, not fatal
    historian.close()


def test_unparseable_payload_skipped(tmp_path):
    path = tmp_path / "h.db"
    _seed(path, rows=2)
    conn = sqlite3.connect(path)
    import zlib
    garbage = "not json {"
    conn.execute(
        "UPDATE records SET payload = ?, crc = ? WHERE id = 1",
        (garbage, zlib.crc32(garbage.encode()) & 0xFFFFFFFF))
    conn.commit()
    conn.close()

    historian = Historian(path)
    records = historian.query("c", kind="snapshot")
    assert [r["payload"]["i"] for r in records] == [1]
    assert historian.stats()["corrupt_records"] == 1
    historian.close()


def test_garbage_file_opens_degraded_and_absorbs_writes(tmp_path):
    path = tmp_path / "h.db"
    path.write_bytes(b"this was never a sqlite database" * 64)

    historian = Historian(path)  # must not raise
    assert historian.damage.degraded

    # The full API stays callable and inert.
    cid = historian.begin_campaign("c")
    for i in range(3):
        historian.record(cid, "snapshot", {"i": i})
    historian.flush()
    assert historian.query() == []
    assert historian.campaigns() == []
    assert historian.jobs("c") == []
    assert historian.prune([RetentionPolicy("snapshot",
                                            max_count=1)]) == {}
    report = historian.compare("c", "other")
    assert report["a"]["jobs"] == [] and report["families"] == {}

    stats = historian.stats()
    assert stats["degraded"] is True
    assert stats["lost_records"] >= 3  # writes counted, not raised
    assert stats["errors"]
    historian.end_campaign(cid)
    historian.close()


def test_truncated_file_reads_what_survives(tmp_path):
    path = tmp_path / "h.db"
    _seed(path, rows=50)
    data = path.read_bytes()
    # Chop the tail of the main db file (WAL already checkpointed on
    # close); SQLite sees a torn last page.
    path.write_bytes(data[:len(data) // 2])
    wal = path.with_name(path.name + "-wal")
    if wal.exists():
        wal.unlink()

    historian = Historian(path)  # must not raise, however bad the file
    records = historian.query("c", kind="snapshot", limit=0)
    stats = historian.stats()
    # Either some rows survived the truncation or the open itself
    # degraded — both are acceptable; an exception is not.
    assert isinstance(records, list)
    assert stats["degraded"] or stats["read_errors"] >= 0

    # And a fleet-side ingest against the damaged store stays silent.
    cid = historian.begin_campaign("post-damage")
    historian.record(cid, "snapshot", {"i": -1})
    historian.flush()
    historian.close()


def test_writes_after_close_are_counted_lost(tmp_path):
    path = tmp_path / "h.db"
    historian = Historian(path)
    cid = historian.begin_campaign("c")
    historian.close()
    historian.record(cid, "snapshot", {"i": 1})
    historian.flush()
    assert historian.damage.lost_records >= 1
