"""Acceptance e2e: two campaigns, one historian database.

Campaign A runs through the real CLI (``fleet run --historian``);
campaign B runs programmatically with an induced stall fault and a
threshold alert rule over a federated family.  The one database must
then answer: which jobs did each campaign run (``/api/historian/
compare`` names every one), what did the watchdog conclude about the
stall (post-mortem by campaign id), and the rule must have fired
exactly once into the SSE stream and resolved.
"""

import threading
import time

import pytest

from repro import cli
from repro.core import RTMClient
from repro.fleet import FleetGateway, FleetManager, JobQueue, JobSpec
from repro.historian import Historian, HistorianService, MetricRule

_STALL_FAULT = {"kind": "stall", "target": "*WriteBuffer*",
                "start": 5e-7}

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def two_campaigns(tmp_path_factory):
    db = tmp_path_factory.mktemp("historian") / "historian.db"

    # -- campaign A: the stock CLI path --------------------------------
    code = cli.main(["fleet", "run", "--workers", "2",
                     "--workloads", "fir", "--chiplets", "1,2",
                     "--timeout", "300",
                     "--historian", str(db),
                     "--campaign", "camp-a",
                     "--historian-interval", "0.2"])
    assert code == 0

    # -- campaign B: induced stall + alert rule + SSE witness ----------
    specs = [JobSpec("fir-c1", "fir", chiplets=1, max_retries=1),
             JobSpec("fir-c2", "fir", chiplets=2, max_retries=1),
             JobSpec("kmeans-c1", "kmeans", chiplets=1, max_retries=1)]
    specs[0].fault = dict(_STALL_FAULT)  # watchdog aborts attempt 0

    queue = JobQueue()
    queue.submit_all(specs)
    manager = FleetManager(queue, num_workers=2)
    gateway = FleetGateway(manager)
    historian = Historian(db)
    # interval=60: the sampler thread stays quiet and the test drives
    # tick() itself, so "fires exactly once" is deterministic.
    service = HistorianService(historian, campaign_id="camp-b",
                               manager=manager, interval=60.0)
    rule = service.add_rule(MetricRule(
        "rtm_fleet_workers_live", op=">=", threshold=1))
    service.bind_gateway(gateway)
    gateway.start()

    client = RTMClient(gateway.url)
    events = []
    stream_done = threading.Event()

    def consume():
        try:
            for event in client.historian_stream(interval=0.1,
                                                 max_events=2,
                                                 since=0):
                events.append(event)
        finally:
            stream_done.set()

    witness = threading.Thread(target=consume, daemon=True)
    witness.start()

    manager.start()
    try:
        # Tick until the workers-live rule fires.  Extra ticks while
        # still breaching must stay silent (the dedup under test).
        deadline = time.monotonic() + 60.0
        while rule.state != "firing":
            assert time.monotonic() < deadline, "rule never fired"
            service.tick()
            time.sleep(0.1)
        service.tick()
        service.tick()

        assert manager.wait(timeout=300.0), manager.status()
    finally:
        manager.stop()

    # Workers are down: the next evaluation resolves the rule.
    service.tick()
    assert rule.state == "ok"
    assert stream_done.wait(timeout=10.0), "SSE stream never closed"

    compare = client.historian_compare("camp-a", "camp-b")
    postmortems = client.historian_query(campaign="camp-b",
                                         kind="postmortem")
    alerts = client.historian_alerts()
    campaigns = client.historian_campaigns()
    status = client.historian_status()

    service.stop()
    gateway.stop()
    historian.close()
    return {"db": db, "events": events, "compare": compare,
            "postmortems": postmortems, "alerts": alerts,
            "campaigns": campaigns, "status": status,
            "queue_counts": queue.counts()}


def test_campaign_b_drained(two_campaigns):
    counts = two_campaigns["queue_counts"]
    assert counts["completed"] == 3
    assert counts["failed"] == 0


def test_compare_names_every_job_from_both_campaigns(two_campaigns):
    compare = two_campaigns["compare"]
    assert compare["a"]["campaign_id"] == "camp-a"
    jobs_a = {j["job_id"] for j in compare["a"]["jobs"]}
    jobs_b = {j["job_id"] for j in compare["b"]["jobs"]}
    assert jobs_a == {"fir-c1", "fir-c2"}
    assert jobs_b == {"fir-c1", "fir-c2", "kmeans-c1"}
    # Every job completed on both sides, and B's sabotaged job shows
    # its retry.
    for job in compare["a"]["jobs"] + compare["b"]["jobs"]:
        assert job["state"] == "completed"
    (sabotaged,) = [j for j in compare["b"]["jobs"]
                    if j["job_id"] == "fir-c1"]
    assert sabotaged["retries"] >= 1
    # Shared engine families diff with finite deltas.
    shared = [name for name, entry in compare["families"].items()
              if entry.get("a") is not None
              and entry.get("b") is not None]
    assert any(name.startswith("rtm_engine") for name in shared)


def test_stall_postmortem_retrievable_by_campaign_id(two_campaigns):
    postmortems = two_campaigns["postmortems"]
    assert postmortems, "no post-mortem records for camp-b"
    named = [p for p in postmortems if p["name"] == "fir-c1"]
    assert named, "stalled job has no post-mortem"
    reports = [p["payload"] for p in named]
    watchdogs = [r.get("watchdog") for r in reports
                 if r.get("watchdog")]
    assert watchdogs, f"no watchdog verdict in {reports}"
    report = watchdogs[0].get("report") or watchdogs[0]
    assert report.get("verdict")


def test_rule_fired_exactly_once_into_sse_and_resolved(two_campaigns):
    events = two_campaigns["events"]
    assert [e["state"] for e in events] == ["firing", "resolved"]
    assert events[0]["name"] == "rtm_fleet_workers_live >= 1"
    assert events[0]["seq"] < events[1]["seq"]
    # The store agrees: exactly one firing and one resolved alert
    # record landed for camp-b.
    historian = Historian(two_campaigns["db"])
    alerts = historian.alerts("camp-b")
    historian.close()
    states = [a["payload"]["state"] for a in alerts]
    assert states == ["firing", "resolved"]


def test_both_campaigns_listed_with_records(two_campaigns):
    by_id = {c["campaign_id"]: c
             for c in two_campaigns["campaigns"]}
    assert {"camp-a", "camp-b"} <= set(by_id)
    for campaign_id in ("camp-a", "camp-b"):
        records = by_id[campaign_id]["records"]
        assert records.get("snapshot", 0) >= 1
        assert records.get("job", 0) >= 2
    assert by_id["camp-a"]["finished_wall"] is not None
    status = two_campaigns["status"]
    assert status["campaign_id"] == "camp-b"
    assert status["jobs_recorded"] == 3
