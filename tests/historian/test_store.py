"""Tests for the historian repository layer (store + compare)."""

import json
import sqlite3

import pytest

from repro.historian import Historian, RECORD_KINDS
from repro.metrics import MetricRegistry, expose


def _exposition(**families):
    registry = MetricRegistry()
    for name, value in families.items():
        registry.gauge(name, "test family").set(float(value))
    return expose(registry)


@pytest.fixture
def store(tmp_path):
    historian = Historian(tmp_path / "historian.db")
    yield historian
    historian.close()


def test_record_query_round_trip(store):
    cid = store.begin_campaign("c1", meta={"workers": 2})
    store.record(cid, "snapshot", {"totals": {"x": 1.0}})
    store.record(cid, "job", {"state": "completed"}, name="fir-c1")
    records = store.query(cid)
    assert [r["kind"] for r in records] == ["snapshot", "job"]
    assert records[0]["payload"] == {"totals": {"x": 1.0}}
    assert records[1]["name"] == "fir-c1"
    (campaign,) = store.campaigns()
    assert campaign["campaign_id"] == "c1"
    assert campaign["meta"] == {"workers": 2}
    assert campaign["records"] == {"snapshot": 1, "job": 1}


def test_query_filters(store):
    a = store.begin_campaign("a")
    b = store.begin_campaign("b")
    store.record(a, "snapshot", {"n": 1})
    store.record(b, "snapshot", {"n": 2})
    store.record(b, "alert", {"state": "firing"}, name="rule-1")
    assert len(store.query()) == 3
    assert len(store.query(campaign_id="b")) == 2
    assert len(store.query(kind="alert")) == 1
    assert store.query(campaign_id="b", kind="snapshot")[0][
        "payload"] == {"n": 2}
    assert store.query(name="rule-1")[0]["kind"] == "alert"


def test_end_campaign_sets_finished(store):
    cid = store.begin_campaign("done")
    store.end_campaign(cid)
    (campaign,) = store.campaigns()
    assert campaign["finished_wall"] is not None


def test_jobs_latest_record_wins(store):
    cid = store.begin_campaign("c")
    store.record(cid, "job", {"state": "failed"}, name="j1")
    store.record(cid, "job", {"state": "completed"}, name="j1")
    (job,) = store.jobs(cid)
    assert job["payload"]["state"] == "completed"


def test_batched_writes_flush_on_query(tmp_path):
    historian = Historian(tmp_path / "h.db", batch_size=1000,
                          flush_interval=1000.0)
    cid = historian.begin_campaign("c")
    for i in range(10):
        historian.record(cid, "snapshot", {"i": i})
    # Nothing flushed yet — but a query must see its own writes.
    assert len(historian.query(cid)) == 10
    historian.close()


def test_unknown_kind_rejected(store):
    cid = store.begin_campaign("c")
    with pytest.raises(ValueError):
        store.record(cid, "banana", {})
    assert set(RECORD_KINDS) == {"snapshot", "job", "postmortem",
                                 "alert", "profile"}


def test_compare_names_every_job_and_diffs_families(store):
    a = store.begin_campaign("base")
    b = store.begin_campaign("cand")
    store.record(a, "job",
                 {"state": "completed", "retries": 0,
                  "metrics_text": _exposition(rtm_x=10, rtm_old=1)},
                 name="fir-c1")
    store.record(a, "job",
                 {"state": "completed", "retries": 0,
                  "metrics_text": _exposition(rtm_x=20)},
                 name="fir-c2")
    store.record(b, "job",
                 {"state": "failed", "retries": 1,
                  "metrics_text": _exposition(rtm_x=45, rtm_new=7)},
                 name="fir-c1")
    report = store.compare("base", "cand")
    assert [j["job_id"] for j in report["a"]["jobs"]] == ["fir-c1",
                                                          "fir-c2"]
    assert [j["job_id"] for j in report["b"]["jobs"]] == ["fir-c1"]
    assert report["b"]["jobs"][0]["state"] == "failed"
    family = report["families"]["rtm_x"]
    assert family["a"] == 30.0 and family["b"] == 45.0
    assert family["delta"] == 15.0
    assert family["ratio"] == pytest.approx(1.5)
    assert report["only_a"] == ["rtm_old"]
    assert report["only_b"] == ["rtm_new"]


def test_compare_tolerates_missing_exposition(store):
    a = store.begin_campaign("a")
    b = store.begin_campaign("b")
    store.record(a, "job", {"state": "completed",
                            "metrics_text": None}, name="j")
    report = store.compare("a", "b")
    assert report["a"]["jobs"][0]["job_id"] == "j"
    assert report["families"] == {}


def test_rows_survive_process_reopen(tmp_path):
    path = tmp_path / "h.db"
    historian = Historian(path)
    cid = historian.begin_campaign("c")
    historian.record(cid, "postmortem", {"verdict": "aborted"},
                     name="j1")
    historian.close()
    reopened = Historian(path)
    (record,) = reopened.postmortems("c")
    assert record["payload"]["verdict"] == "aborted"
    reopened.close()


def test_crc_stored_per_row(tmp_path):
    path = tmp_path / "h.db"
    historian = Historian(path)
    cid = historian.begin_campaign("c")
    historian.record(cid, "snapshot", {"n": 1})
    historian.flush()
    historian.close()
    conn = sqlite3.connect(path)
    ((payload, crc),) = conn.execute(
        "SELECT payload, crc FROM records").fetchall()
    conn.close()
    import zlib
    assert crc == (zlib.crc32(payload.encode()) & 0xFFFFFFFF)
    assert json.loads(payload) == {"n": 1}
