"""The gateway in isolation, against a stub manager and a fake worker.

``FleetGateway`` documents a four-method manager contract
(``live_workers`` / ``scrape_targets`` / ``final_metrics`` /
``status``); these tests hold it to that contract so the gateway stays
testable without subprocesses.
"""

import json
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro.core import RTMClient, RTMClientError, RTMConnectionError
from repro.core.server import (BadRequest, HTTPServerThread,
                               JSONRequestHandler)
from repro.fleet import FleetGateway


class _StubManager:
    """The manager contract, minus the subprocesses.

    ``live`` is ``{worker_id: url}``; ``running`` is ``{worker_id:
    job_id}`` (live workers mid-job, i.e. scrape targets); ``final`` is
    ``{job_id: {worker_id, attempt, text}}`` — the warm-fleet,
    job-keyed shape.
    """

    def __init__(self, live=None, final=None, summary=None,
                 running=None, restarts=0):
        self.live = dict(live or {})
        self.final = dict(final or {})
        self.running = dict(running or {})
        self.restarts = restarts
        self.summary = dict(summary or {"queued": 0, "running": 0,
                                        "completed": 0, "failed": 0,
                                        "total": 0, "retries": 0})

    def live_workers(self):
        return dict(self.live)

    def scrape_targets(self):
        return [{"worker_id": worker_id, "job_id": job_id,
                 "url": self.live[worker_id]}
                for worker_id, job_id in self.running.items()]

    def final_metrics(self):
        return {job_id: dict(entry)
                for job_id, entry in self.final.items()}

    def status(self):
        return {"num_workers": 2, "warm": True, "drained": False,
                "worker_restarts": self.restarts,
                "summary": dict(self.summary), "workers": [], "jobs": []}


class _FakeWorkerHandler(JSONRequestHandler):
    """A stand-in worker API: /metrics, /api/overview, /api/boom."""

    def do_GET(self):  # noqa: N802 (stdlib naming)
        path = self._query()[0]
        if path == "/metrics":
            self._send_body(b"# HELP up Up.\n# TYPE up gauge\nup 1\n",
                            "text/plain; version=0.0.4")
        elif path == "/api/overview":
            self._send_json({"run_state": "running"})
        else:
            self._send_error_json("no such endpoint", 404)


@pytest.fixture()
def fake_worker():
    server = HTTPServerThread(_FakeWorkerHandler)
    server.start()
    yield server
    server.stop()


def _gateway(manager):
    gateway = FleetGateway(manager)
    gateway.start()
    return gateway


def test_fleet_status_view_includes_gateway_url():
    gateway = _gateway(_StubManager())
    try:
        status = RTMClient(gateway.url).fleet_status()
        assert status["gateway_url"] == gateway.url
        assert status["summary"]["total"] == 0
    finally:
        gateway.stop()


def test_unknown_route_is_404():
    gateway = _gateway(_StubManager())
    try:
        with pytest.raises(RTMClientError, match="404"):
            RTMClient(gateway.url)._get("/api/nonesuch")
    finally:
        gateway.stop()


def test_proxy_reaches_a_live_worker(fake_worker):
    manager = _StubManager(live={"w1": fake_worker.url})
    gateway = _gateway(manager)
    try:
        client = RTMClient(gateway.url)
        assert client.fleet_worker_get("w1", "/api/overview") == \
            {"run_state": "running"}
    finally:
        gateway.stop()


def test_proxy_unknown_worker_is_404(fake_worker):
    gateway = _gateway(_StubManager(live={"w1": fake_worker.url}))
    try:
        with urlopen_error(gateway.url + "/api/fleet/w9/api/overview") \
                as exc:
            assert exc.code == 404
            assert "unknown" in json.loads(exc.read())["error"]
    finally:
        gateway.stop()


def test_proxy_dead_worker_is_502():
    # w1 is "live" per the manager but nothing listens on its port.
    gateway = _gateway(_StubManager(live={"w1": "http://127.0.0.1:9"}))
    try:
        with urlopen_error(gateway.url + "/api/fleet/w1/api/overview") \
                as exc:
            assert exc.code == 502
            assert "unreachable" in json.loads(exc.read())["error"]
    finally:
        gateway.stop()


def test_proxy_passes_worker_verdict_through(fake_worker):
    gateway = _gateway(_StubManager(live={"w1": fake_worker.url}))
    try:
        with urlopen_error(gateway.url + "/api/fleet/w1/api/boom") \
                as exc:
            assert exc.code == 404  # the worker's own 404, not ours
            assert "no such endpoint" in json.loads(exc.read())["error"]
    finally:
        gateway.stop()


def test_proxy_without_sub_path_is_400():
    gateway = _gateway(_StubManager())
    try:
        with urlopen_error(gateway.url + "/api/fleet/w1") as exc:
            assert exc.code == 400
    finally:
        gateway.stop()


_UP = "# HELP up Up.\n# TYPE up gauge\nup {v}\n"


def test_federated_metrics_merges_live_and_finished_jobs(fake_worker):
    manager = _StubManager(
        live={"w1": fake_worker.url},
        running={"w1": "job-live"},
        final={"job-old": {"worker_id": "w2", "attempt": 0,
                           "text": _UP.format(v=0)}})
    gateway = _gateway(manager)
    try:
        text = RTMClient(gateway.url).metrics_text()
        # The running job is scraped live; the finished one comes from
        # the control-channel cache; both carry (worker, job) labels.
        assert 'up{worker="w1",job="job-live"} 1' in text
        assert 'up{worker="w2",job="job-old"} 0' in text
        # The gateway's own fleet families lead, un-labelled.
        assert "rtm_fleet_workers_live 1" in text
        assert text.splitlines().count("# TYPE up gauge") == 1
    finally:
        gateway.stop()


def test_finished_job_is_not_double_scraped_from_its_worker(
        fake_worker):
    """Once a job's final exposition landed, a live scrape of the same
    job must not add a second copy of its series — the warm worker may
    not have picked up its next job yet."""
    manager = _StubManager(
        live={"w1": fake_worker.url},
        running={"w1": "job-a"},
        final={"job-a": {"worker_id": "w1", "attempt": 0,
                         "text": _UP.format(v=0)}})
    gateway = _gateway(manager)
    try:
        text = RTMClient(gateway.url).metrics_text()
        assert text.count('job="job-a"') == 1
        assert 'up{worker="w1",job="job-a"} 0' in text  # the final won
    finally:
        gateway.stop()


def test_federated_metrics_reports_unreachable_workers():
    gateway = _gateway(_StubManager(live={"w1": "http://127.0.0.1:9"},
                                    running={"w1": "job-a"}))
    try:
        text = RTMClient(gateway.url).metrics_text()
        assert "# worker w1 unreachable:" in text
        assert "rtm_fleet_workers_live 1" in text
    finally:
        gateway.stop()


def test_fleet_gauges_track_the_queue_summary():
    manager = _StubManager(summary={"queued": 2, "running": 1,
                                    "completed": 3, "failed": 1,
                                    "total": 7, "retries": 2},
                           restarts=1)
    gateway = _gateway(manager)
    try:
        text = RTMClient(gateway.url).metrics_text()
        assert 'rtm_fleet_jobs{state="queued"} 2' in text
        assert 'rtm_fleet_jobs{state="completed"} 3' in text
        assert "rtm_fleet_job_retries_total 2" in text
        assert "rtm_fleet_worker_restarts_total 1" in text
    finally:
        gateway.stop()


def test_per_job_metrics_route_serves_the_cached_final():
    manager = _StubManager(
        final={"job-a": {"worker_id": "w3", "attempt": 1,
                         "text": _UP.format(v=1)}})
    gateway = _gateway(manager)
    try:
        client = RTMClient(gateway.url)
        text = client.fleet_job_metrics("job-a")
        assert 'up{worker="w3",job="job-a"} 1' in text
        with pytest.raises(RTMClientError, match="404"):
            client.fleet_job_metrics("job-z")
    finally:
        gateway.stop()


def test_client_fast_fails_against_a_stopped_gateway():
    gateway = _gateway(_StubManager())
    url = gateway.url
    gateway.stop()
    with pytest.raises(RTMConnectionError):
        RTMClient(url).fleet_status()


class urlopen_error:
    """Context manager asserting an HTTPError and yielding it."""

    def __init__(self, url):
        self.url = url

    def __enter__(self):
        try:
            urlopen(Request(self.url, method="GET"), timeout=5.0)
        except HTTPError as exc:
            return exc
        raise AssertionError(f"{self.url} unexpectedly succeeded")

    def __exit__(self, *exc_info):
        return False
