"""Control-channel framing under damage: the FrameDecoder contract.

The manager reads worker stdout as raw pipe chunks.  Nothing guarantees
those chunks align with lines: the OS splits where it pleases (even
mid-UTF-8-sequence), simulations ``print()`` freely between frames, and
a worker dying mid-write leaves a torn line.  These tests feed the
decoder exactly that traffic.
"""

import json

import pytest

from repro.fleet.protocol import (
    CONTROL_PREFIX,
    FrameDecoder,
    decode_command,
    emit,
    encode_command,
)


def _frame(payload) -> bytes:
    return (CONTROL_PREFIX + json.dumps(payload) + "\n").encode()


# ---------------------------------------------------------------------------
# Clean traffic
# ---------------------------------------------------------------------------

def test_whole_frames_decode_in_order():
    decoder = FrameDecoder()
    events = decoder.feed(_frame({"event": "ready", "n": 1})
                          + _frame({"event": "done", "n": 2}))
    assert [e["n"] for e in events] == [1, 2]
    assert decoder.errors == 0 and decoder.noise == 0


def test_emit_output_round_trips_through_the_decoder(capsys):
    emit({"event": "final-metrics", "metrics_text": "x" * 70000})
    out = capsys.readouterr().out
    (event,) = FrameDecoder().feed(out.encode())
    assert len(event["metrics_text"]) == 70000


# ---------------------------------------------------------------------------
# Split chunks
# ---------------------------------------------------------------------------

def test_frame_split_across_arbitrary_chunk_boundaries():
    raw = _frame({"event": "progress", "sim_time": 1.5e-6})
    for cut in range(1, len(raw)):
        decoder = FrameDecoder()
        events = decoder.feed(raw[:cut]) + decoder.feed(raw[cut:])
        assert [e["event"] for e in events] == ["progress"], cut
        assert decoder.errors == 0


def test_chunk_split_mid_utf8_sequence():
    payload = {"event": "failed", "error": "bad workload “nönesuch”"}
    raw = (CONTROL_PREFIX
           + json.dumps(payload, ensure_ascii=False)
           + "\n").encode()
    # Split inside the multi-byte sequence for “ (3 bytes in UTF-8).
    cut = raw.index("“".encode()) + 1
    decoder = FrameDecoder()
    events = decoder.feed(raw[:cut]) + decoder.feed(raw[cut:])
    assert events[0]["error"] == "bad workload “nönesuch”"
    assert decoder.errors == 0


def test_one_byte_at_a_time_delivery():
    raw = _frame({"event": "ready", "worker_id": "w1"})
    decoder = FrameDecoder()
    events = []
    for i in range(len(raw)):
        events += decoder.feed(raw[i:i + 1])
    assert [e["event"] for e in events] == ["ready"]


# ---------------------------------------------------------------------------
# Interleaved garbage
# ---------------------------------------------------------------------------

def test_plain_stdout_lines_are_ignored_but_counted():
    decoder = FrameDecoder()
    events = decoder.feed(b"loading kernel...\n"
                          + _frame({"event": "started"})
                          + b"42 cycles simulated\n"
                          + _frame({"event": "done"}))
    assert [e["event"] for e in events] == ["started", "done"]
    assert decoder.noise == 2
    assert decoder.errors == 0


def test_print_without_newline_glued_onto_a_frame_recovers():
    # print("...", end="") from inside a simulation lands immediately
    # before the next frame's prefix, on the same line.
    decoder = FrameDecoder()
    events = decoder.feed(b"stray fragment"
                          + _frame({"event": "progress", "n": 7}))
    assert [e["n"] for e in events] == [7]
    assert decoder.noise == 1


def test_torn_json_is_dropped_and_counted():
    decoder = FrameDecoder()
    events = decoder.feed(CONTROL_PREFIX.encode()
                          + b'{"event": "done", "ok": tr\n'
                          + _frame({"event": "ready"}))
    assert [e["event"] for e in events] == ["ready"]
    assert decoder.errors == 1


def test_non_object_control_payload_is_an_error():
    decoder = FrameDecoder()
    assert decoder.feed(CONTROL_PREFIX.encode() + b"[1, 2]\n") == []
    assert decoder.errors == 1


def test_binary_garbage_between_frames():
    decoder = FrameDecoder()
    events = decoder.feed(bytes(range(256)) + b"\n"
                          + _frame({"event": "done"}))
    assert [e["event"] for e in events] == ["done"]


def test_runaway_unterminated_garbage_does_not_balloon_memory():
    decoder = FrameDecoder()
    for _ in range(10):
        assert decoder.feed(b"\xff" * (1024 * 1024)) == []
    # The buffer was dropped once it crossed the line cap ...
    assert decoder.errors >= 1
    # ... and the channel still works afterwards.
    assert decoder.feed(b"\n" + _frame({"event": "ready"})) != []


def test_eof_mid_frame_counts_as_torn_not_parsed():
    decoder = FrameDecoder()
    assert decoder.feed(
        CONTROL_PREFIX.encode() + b'{"event": "done", "ok": true') == []
    assert decoder.flush() == []
    assert decoder.errors == 1


def test_eof_with_plain_text_leftover_is_noise():
    decoder = FrameDecoder()
    decoder.feed(b"half a log line")
    assert decoder.flush() == []
    assert decoder.noise == 1 and decoder.errors == 0


# ---------------------------------------------------------------------------
# The command direction
# ---------------------------------------------------------------------------

def test_command_round_trip():
    payload = {"cmd": "run", "spec": {"job_id": "a"}, "attempt": 2}
    line = encode_command(payload).decode()
    assert decode_command(line) == payload


@pytest.mark.parametrize("line", ["", "   \n", "not json",
                                  '"a bare string"', "[1,2,3]"])
def test_bad_command_lines_are_none_not_fatal(line):
    assert decode_command(line) is None
