"""The worker subprocess: control channel framing, spec handling."""

import json
import os
import subprocess
import sys

import pytest

from repro.fleet.worker import CONTROL_PREFIX, emit


def _run_worker(spec_json, *extra, timeout=120):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.run(
        [sys.executable, "-m", "repro.fleet.worker",
         "--spec", spec_json, *extra],
        capture_output=True, text=True, timeout=timeout, env=env)


def _control_events(stdout):
    events = []
    for line in stdout.splitlines():
        if line.startswith(CONTROL_PREFIX):
            events.append(json.loads(line[len(CONTROL_PREFIX):]))
    return events


def test_emit_writes_prefixed_flushed_json(capsys):
    emit({"event": "register", "pid": 1})
    out = capsys.readouterr().out
    assert out.startswith(CONTROL_PREFIX)
    assert json.loads(out[len(CONTROL_PREFIX):]) == \
        {"event": "register", "pid": 1}


@pytest.mark.slow
def test_worker_runs_a_job_and_ships_the_result():
    spec = {"job_id": "fir-c1", "workload": "fir", "chiplets": 1}
    proc = _run_worker(json.dumps(spec))
    assert proc.returncode == 0, proc.stderr
    events = _control_events(proc.stdout)
    kinds = [e["event"] for e in events]
    assert kinds == ["register", "result"]

    register, result = events
    assert register["job_id"] == "fir-c1"
    assert register["url"].startswith("http://127.0.0.1:")
    assert register["pid"] > 0
    assert register["port"] == int(register["url"].rsplit(":", 1)[1])

    assert result["ok"] is True
    assert result["run_state"] == "completed"
    assert result["sim_time"] > 0
    assert result["events"] > 0
    # The final exposition rides the control channel so the gateway can
    # keep serving this worker's series after the process dies.
    assert "rtm_engine_events_total" in result["metrics_text"]


def test_bad_spec_is_rejected_before_any_simulation():
    proc = _run_worker(json.dumps({"job_id": "x",
                                   "workload": "nonesuch"}))
    assert proc.returncode == 2
    (result,) = _control_events(proc.stdout)
    assert result["event"] == "result"
    assert result["run_state"] == "rejected"
    assert "unknown workload" in result["error"]


def test_malformed_spec_json_is_rejected():
    proc = _run_worker("{not json")
    assert proc.returncode == 2
    (result,) = _control_events(proc.stdout)
    assert result["run_state"] == "rejected"
