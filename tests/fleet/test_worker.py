"""The worker subprocess: event protocol, spec handling, warm serving."""

import json
import os
import subprocess
import sys

import pytest

from repro.fleet.protocol import FrameDecoder, encode_command
from repro.fleet.worker import CONTROL_PREFIX, emit


def _worker_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _run_worker(spec_json, *extra, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro.fleet.worker",
         "--spec", spec_json, *extra],
        capture_output=True, text=True, timeout=timeout,
        env=_worker_env())


def _control_events(stdout):
    return list(FrameDecoder().iter_text(stdout))


def test_emit_writes_prefixed_flushed_json(capsys):
    emit({"event": "ready", "pid": 1})
    out = capsys.readouterr().out
    assert out.startswith(CONTROL_PREFIX)
    assert json.loads(out[len(CONTROL_PREFIX):]) == \
        {"event": "ready", "pid": 1}


@pytest.mark.slow
def test_one_shot_worker_emits_the_full_event_sequence():
    spec = {"job_id": "fir-c1", "workload": "fir", "chiplets": 1}
    proc = _run_worker(json.dumps(spec))
    assert proc.returncode == 0, proc.stderr
    events = _control_events(proc.stdout)
    kinds = [e["event"] for e in events]
    # progress events are timing-dependent; the rest is the contract.
    assert [k for k in kinds if k != "progress"] == \
        ["ready", "started", "final-metrics", "done"]

    ready = events[0]
    assert ready["url"].startswith("http://127.0.0.1:")
    assert ready["pid"] > 0
    assert ready["port"] == int(ready["url"].rsplit(":", 1)[1])

    final = next(e for e in events if e["event"] == "final-metrics")
    result = events[-1]
    assert result["job_id"] == "fir-c1"
    assert result["ok"] is True
    assert result["run_state"] == "completed"
    assert result["sim_time"] > 0
    assert result["events"] > 0
    # The final exposition rides the control channel so the gateway can
    # keep serving this job's series after the worker moves on or dies.
    assert "rtm_engine_events_total" in final["metrics_text"]
    # ... and it ships *before* the result, so a scrape racing the
    # completion can never see a terminal job with no series.
    assert kinds.index("final-metrics") < kinds.index("done")


def test_bad_spec_is_rejected_before_any_simulation():
    proc = _run_worker(json.dumps({"job_id": "x",
                                   "workload": "nonesuch"}))
    assert proc.returncode == 2
    (result,) = _control_events(proc.stdout)
    assert result["event"] == "failed"
    assert result["run_state"] == "rejected"
    assert "unknown workload" in result["error"]


def test_malformed_spec_json_is_rejected():
    proc = _run_worker("{not json")
    assert proc.returncode == 2
    (result,) = _control_events(proc.stdout)
    assert result["run_state"] == "rejected"


@pytest.mark.slow
def test_warm_worker_serves_multiple_jobs_from_stdin():
    """One --serve process: two run commands, two results, one URL."""
    commands = b"".join([
        encode_command({"cmd": "run", "attempt": 0,
                        "spec": {"job_id": "a", "workload": "fir",
                                 "params": {"num_samples": 2048}}}),
        encode_command({"cmd": "run", "attempt": 0,
                        "spec": {"job_id": "b", "workload": "fir",
                                 "params": {"num_samples": 2048}}}),
        encode_command({"cmd": "shutdown"}),
    ])
    proc = subprocess.run(
        [sys.executable, "-m", "repro.fleet.worker", "--serve",
         "--worker-id", "w1"],
        input=commands, capture_output=True, timeout=120,
        env=_worker_env())
    assert proc.returncode == 0, proc.stderr.decode()
    events = list(FrameDecoder().feed(proc.stdout))
    kinds = [e["event"] for e in events if e["event"] != "progress"]
    # ready brackets every job: boot, after a, after b.
    assert kinds == ["ready", "started", "final-metrics", "done",
                     "ready", "started", "final-metrics", "done",
                     "ready"]
    readies = [e for e in events if e["event"] == "ready"]
    assert {r["url"] for r in readies} == {readies[0]["url"]}, \
        "the warm worker's URL must be stable across jobs"
    assert [r["jobs_done"] for r in readies] == [0, 1, 2]
    dones = [e for e in events if e["event"] == "done"]
    assert [d["job_id"] for d in dones] == ["a", "b"]
    assert all(d["ok"] for d in dones)


@pytest.mark.slow
def test_warm_worker_rejects_bad_spec_and_keeps_serving():
    commands = b"".join([
        encode_command({"cmd": "run", "attempt": 0,
                        "spec": {"job_id": "bad",
                                 "workload": "nonesuch"}}),
        encode_command({"cmd": "nonsense"}),
        encode_command({"cmd": "run", "attempt": 0,
                        "spec": {"job_id": "good", "workload": "fir",
                                 "params": {"num_samples": 2048}}}),
        encode_command({"cmd": "shutdown"}),
    ])
    proc = subprocess.run(
        [sys.executable, "-m", "repro.fleet.worker", "--serve",
         "--worker-id", "w1"],
        input=commands, capture_output=True, timeout=120,
        env=_worker_env())
    assert proc.returncode == 0, proc.stderr.decode()
    events = list(FrameDecoder().feed(proc.stdout))
    failed = [e for e in events if e["event"] == "failed"]
    assert [f["run_state"] for f in failed] == ["rejected", "rejected"]
    done = next(e for e in events if e["event"] == "done")
    assert done["job_id"] == "good" and done["ok"]
    # The worker re-announced readiness after each rejection.
    assert sum(1 for e in events if e["event"] == "ready") == 4


def test_warm_worker_exits_cleanly_on_stdin_eof():
    """An orphaned worker (manager gone, pipe closed) must not linger."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.fleet.worker", "--serve",
         "--worker-id", "w1"],
        input=b"", capture_output=True, timeout=60, env=_worker_env())
    assert proc.returncode == 0, proc.stderr.decode()
    events = list(FrameDecoder().feed(proc.stdout))
    assert [e["event"] for e in events] == ["ready"]
