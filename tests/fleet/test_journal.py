"""The campaign WAL: record integrity, adversarial replay, compaction.

The contract under test is ISSUE 7's tentpole half 1: replaying a
journal — including one damaged exactly the way crashes damage files
(torn tail, corrupt record mid-file, duplicated completion) — rebuilds
the campaign exactly-once: completed jobs stay completed, unfinished
jobs requeue with their history, and damage is counted, never fatal.
"""

import os

import pytest

from repro.fleet import (
    CampaignJournal,
    JobQueue,
    JobSpec,
    replay_journal,
)
from repro.fleet.journal import _decode_record, _encode_record


def _spec(job_id: str, max_retries: int = 1) -> JobSpec:
    return JobSpec(job_id, "fir", chiplets=1, max_retries=max_retries)


def _journaled_campaign(path: str):
    """A small campaign driven to a mid-flight state: one completed,
    one failed-and-requeued, one untouched."""
    journal = CampaignJournal(str(path))
    queue = JobQueue()
    journal.attach(queue)
    for job_id in ("a", "b", "c"):
        queue.submit(_spec(job_id))
    done = queue.claim("w1")
    journal.append("final-metrics", job_id=done.spec.job_id,
                   worker_id="w1", attempt=0, text="# exposition\n")
    queue.complete(done.spec.job_id, {"run_state": "completed"})
    crashed = queue.claim("w2")
    journal.append("checkpoint", job_id=crashed.spec.job_id,
                   attempt=0, path="/ckpt/b.rtm", sim_time=5e-7,
                   events=1234)
    queue.fail(crashed.spec.job_id, "worker exited -9 mid-job",
               {"exit_code": -9})
    journal.close()
    return journal


# ----------------------------------------------------------------------
# Clean replay
# ----------------------------------------------------------------------
def test_replay_rebuilds_campaign_state(tmp_path):
    path = tmp_path / "campaign.wal"
    _journaled_campaign(path)

    replay = replay_journal(str(path))
    assert replay.corrupt_records == 0
    assert not replay.torn_tail
    assert replay.jobs["a"]["state"] == "completed"
    assert replay.jobs["b"]["state"] == "queued"  # requeued retry
    assert replay.jobs["b"]["attempt"] == 1
    assert replay.jobs["b"]["failures"][0]["post_mortem"] \
        == {"exit_code": -9}
    assert replay.jobs["c"]["state"] == "queued"
    assert replay.checkpoints["b"]["path"] == "/ckpt/b.rtm"
    assert replay.final_metrics["a"]["text"] == "# exposition\n"

    queue, resumed = replay.build_queue()
    assert sorted(resumed) == ["b", "c"]
    assert queue.get("a").state == "completed"
    assert queue.get("a").result == {"run_state": "completed"}
    assert queue.get("b").attempt == 1
    # Exactly-once: the completed job is never handed out again.
    claimed = {queue.claim("w").spec.job_id for _ in range(2)}
    assert claimed == {"b", "c"}
    assert queue.claim("w") is None


def test_running_job_at_crash_requeues_at_same_attempt(tmp_path):
    path = tmp_path / "campaign.wal"
    journal = CampaignJournal(str(path))
    queue = JobQueue()
    journal.attach(queue)
    queue.submit(_spec("a"))
    queue.claim("w1")  # in flight when the manager dies
    journal.close()

    replay = replay_journal(str(path))
    assert replay.jobs["a"]["state"] == "running"
    rebuilt, resumed = replay.build_queue()
    assert resumed == ["a"]
    job = rebuilt.get("a")
    assert job.state == "queued"
    assert job.attempt == 0  # the attempt never settled: finish it
    assert job.workers == ["w1"]


# ----------------------------------------------------------------------
# Adversarial damage
# ----------------------------------------------------------------------
def test_torn_tail_is_tolerated_and_flagged(tmp_path):
    path = tmp_path / "campaign.wal"
    _journaled_campaign(path)
    blob = path.read_bytes()
    # The writer died mid-append: the final record loses its newline
    # and half its bytes.
    path.write_bytes(blob[:len(blob) - 25])

    replay = replay_journal(str(path))
    assert replay.torn_tail
    assert replay.corrupt_records == 0
    # Everything before the tear still applies.
    assert replay.jobs["a"]["state"] == "completed"


def test_crc_corrupt_record_mid_file_is_skipped_not_fatal(tmp_path):
    path = tmp_path / "campaign.wal"
    _journaled_campaign(path)
    lines = path.read_bytes().splitlines(keepends=True)
    # Flip a byte inside an early record's JSON body (not the tail).
    victim = bytearray(lines[2])
    victim[20] ^= 0xFF
    lines[2] = bytes(victim)
    path.write_bytes(b"".join(lines))

    replay = replay_journal(str(path))
    assert replay.corrupt_records == 1
    assert not replay.torn_tail
    # Records after the corrupt one still applied.
    assert replay.jobs["a"]["state"] == "completed"
    assert replay.checkpoints["b"]["path"] == "/ckpt/b.rtm"


def test_duplicated_completion_replays_exactly_once(tmp_path):
    path = tmp_path / "campaign.wal"
    _journaled_campaign(path)
    # Duplicate the 'complete' record (e.g. a retransmit-style bug or
    # a partially-compacted journal concatenated with its WAL).
    lines = path.read_bytes().splitlines(keepends=True)
    complete_line = next(
        line for line in lines
        if _decode_record(line.rstrip(b"\n")).get("type") == "complete")
    path.write_bytes(b"".join(lines) + complete_line)

    replay = replay_journal(str(path))
    assert replay.duplicates == 1
    assert replay.jobs["a"]["state"] == "completed"
    queue, resumed = replay.build_queue()
    assert queue.counts()["completed"] == 1
    assert sorted(resumed) == ["b", "c"]


def test_garbage_lines_are_counted_not_fatal(tmp_path):
    path = tmp_path / "campaign.wal"
    _journaled_campaign(path)
    blob = path.read_bytes()
    lines = blob.splitlines(keepends=True)
    doctored = (lines[0]
                + b"not a journal record at all\n"
                + b"deadbeef {\"type\": \"not-json...\n"
                + b"".join(lines[1:]))
    path.write_bytes(doctored)

    replay = replay_journal(str(path))
    assert replay.corrupt_records == 2
    assert replay.jobs["a"]["state"] == "completed"


# ----------------------------------------------------------------------
# Record encoding
# ----------------------------------------------------------------------
def test_record_crc_round_trip():
    record = {"type": "complete", "seq": 7, "job_id": "a",
              "result": {"ok": True}}
    line = _encode_record(record)
    assert line.endswith(b"\n")
    assert _decode_record(line.rstrip(b"\n")) == record
    # Any single-bit flip in the body is caught.
    damaged = bytearray(line.rstrip(b"\n"))
    damaged[15] ^= 0x01
    assert _decode_record(bytes(damaged)) is None


def test_fsync_batching_counts_syncs(tmp_path):
    journal = CampaignJournal(str(tmp_path / "j.wal"), fsync_batch=4)
    for i in range(3):
        journal.append("submit", job_id=f"j{i}", spec={})
    assert journal.syncs == 0  # batch not full, nothing critical
    journal.append("complete", critical=True, job_id="j0", result=None)
    assert journal.syncs == 1  # critical forces the sync
    journal.close()


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
def test_compaction_preserves_state_and_shrinks_the_file(tmp_path):
    path = tmp_path / "campaign.wal"
    _journaled_campaign(path)
    before = os.path.getsize(path)
    replay = replay_journal(str(path))

    journal = CampaignJournal(str(path))
    journal.compact(replay)
    journal.append("complete", critical=True, job_id="b",
                   result={"run_state": "completed"})
    journal.close()

    after = replay_journal(str(path))
    assert after.records == 2  # snapshot + the appended record
    assert after.jobs["a"]["state"] == "completed"
    assert after.jobs["b"]["state"] == "completed"
    assert after.jobs["c"]["state"] == "queued"
    assert after.checkpoints["b"]["path"] == "/ckpt/b.rtm"
    assert after.final_metrics["a"]["text"] == "# exposition\n"
    assert not list(tmp_path.glob("*.tmp")), \
        "compaction must not leave temp files"
    assert os.path.getsize(path) <= before + 200


def test_restore_rejects_duplicate_and_bad_state(tmp_path):
    queue = JobQueue()
    queue.restore(_spec("a"), state="completed", result={"ok": True})
    with pytest.raises(ValueError, match="duplicate"):
        queue.restore(_spec("a"))
    with pytest.raises(ValueError, match="running"):
        queue.restore(_spec("b"), state="running")
