"""JobQueue scheduling semantics: ordering, retries, duplicates."""

import pytest

from repro.fleet import JobQueue, JobSpec, workload_catalog


def _spec(job_id="j1", **kwargs):
    kwargs.setdefault("workload", "fir")
    return JobSpec(job_id, **kwargs)


# ---------------------------------------------------------------------------
# JobSpec validation (the workloads --json catalog contract)
# ---------------------------------------------------------------------------

def test_catalog_has_the_suite_plus_storestorm():
    catalog = workload_catalog()
    assert {"aes", "bfs", "fir", "im2col", "kmeans",
            "matmul", "storestorm"} <= set(catalog)


def test_unknown_workload_is_rejected():
    with pytest.raises(ValueError, match="unknown workload"):
        _spec(workload="nonesuch").validate()


def test_unknown_workload_param_is_rejected():
    with pytest.raises(ValueError, match="parameter"):
        _spec(params={"bogus_knob": 3}).validate()


def test_param_overrides_build_the_workload():
    spec = _spec(params={"num_taps": 4})
    spec.validate()
    assert spec.build_workload().num_taps == 4


def test_fault_without_kind_is_rejected():
    with pytest.raises(ValueError, match="kind"):
        _spec(fault={"target": "*"}).validate()


def test_spec_round_trips_through_dict():
    spec = _spec(chiplets=3, fault={"kind": "stall", "target": "*"},
                 max_retries=2, trace=True)
    clone = JobSpec.from_dict(spec.to_dict())
    assert clone == spec


def test_validation_builds_the_catalog_once_for_a_campaign(monkeypatch):
    """Submitting N jobs must not rebuild the workload catalog N times
    (validation runs against the cached schema)."""
    from repro.fleet import queue as queue_module

    calls = {"n": 0}
    real_catalog = queue_module.workload_catalog

    def counting_catalog():
        calls["n"] += 1
        return real_catalog()

    monkeypatch.setattr(queue_module, "workload_catalog",
                        counting_catalog)
    queue_module._catalog_schema.cache_clear()
    try:
        queue = JobQueue()
        queue.submit_all([_spec(f"j{i}", params={"num_taps": 4})
                          for i in range(25)])
        assert calls["n"] == 1
    finally:
        queue_module._catalog_schema.cache_clear()


def test_cached_schema_does_not_leak_workload_instances():
    """build_workload must hand out a fresh instance per call even
    though validation is cached — jobs must not share state through
    the catalog."""
    spec_a, spec_b = _spec("a"), _spec("b")
    spec_a.validate(), spec_b.validate()
    built_a, built_b = spec_a.build_workload(), spec_b.build_workload()
    assert built_a is not built_b


# ---------------------------------------------------------------------------
# Queue ordering and claiming
# ---------------------------------------------------------------------------

def test_fifo_claim_order():
    queue = JobQueue()
    queue.submit_all([_spec("a"), _spec("b"), _spec("c")])
    assert [queue.claim("w1").spec.job_id for _ in range(3)] == \
        ["a", "b", "c"]
    assert queue.claim("w1") is None


def test_duplicate_job_id_is_an_error():
    queue = JobQueue()
    queue.submit(_spec("a"))
    with pytest.raises(ValueError, match="duplicate"):
        queue.submit(_spec("a"))


def test_claim_marks_running_and_records_worker():
    queue = JobQueue()
    queue.submit(_spec("a"))
    job = queue.claim("w7")
    assert job.state == "running"
    assert job.worker_id == "w7"
    assert job.workers == ["w7"]


# ---------------------------------------------------------------------------
# Restart policy
# ---------------------------------------------------------------------------

def test_failed_job_requeues_at_the_front():
    queue = JobQueue()
    queue.submit_all([_spec("a", max_retries=1), _spec("b")])
    queue.claim("w1")  # a
    queue.fail("a", "boom")
    # The retry must not starve behind b.
    assert queue.claim("w2").spec.job_id == "a"


def test_retry_exhaustion_marks_terminal_failure():
    queue = JobQueue()
    queue.submit(_spec("a", max_retries=2))
    for attempt in range(3):
        job = queue.claim(f"w{attempt + 1}")
        assert job.attempt == attempt
        queue.fail("a", f"boom {attempt}", {"exit_code": 1})
    job = queue.get("a")
    assert job.state == "failed"
    assert len(job.failures) == 3
    assert job.failures[-1]["post_mortem"] == {"exit_code": 1}
    assert queue.claim("w9") is None
    assert queue.done


def test_zero_retries_fails_on_first_crash():
    queue = JobQueue()
    queue.submit(_spec("a", max_retries=0))
    queue.claim("w1")
    queue.fail("a", "boom")
    assert queue.get("a").state == "failed"
    assert queue.pending_count == 0


def test_retries_counter_excludes_the_terminal_attempt():
    queue = JobQueue()
    queue.submit(_spec("a", max_retries=1))
    queue.claim("w1")
    queue.fail("a", "first")   # requeued: 1 retry
    queue.claim("w2")
    queue.fail("a", "second")  # terminal: not a retry
    job = queue.get("a")
    assert job.retries == 1
    assert queue.counts()["retries"] == 1


def test_complete_records_result_and_counts():
    queue = JobQueue()
    queue.submit_all([_spec("a"), _spec("b")])
    queue.claim("w1")
    queue.complete("a", {"sim_time": 1e-6})
    counts = queue.counts()
    assert counts == {"queued": 1, "running": 0, "completed": 1,
                      "failed": 0, "total": 2, "retries": 0}
    assert queue.get("a").result == {"sim_time": 1e-6}
    assert not queue.done  # b still queued


def test_to_dict_carries_spec_state_and_history():
    queue = JobQueue()
    queue.submit(_spec("a", max_retries=1))
    queue.claim("w1")
    queue.fail("a", "boom")
    queue.claim("w2")
    queue.complete("a")
    (payload,) = queue.to_dict()
    assert payload["spec"]["job_id"] == "a"
    assert payload["state"] == "completed"
    assert payload["workers"] == ["w1", "w2"]
    assert payload["retries"] == 1
