"""End-to-end durability: the crash paths ISSUE 7 exists for.

Three disasters, each survived:

* a stall-killed job's retry resumes from its last good checkpoint
  (engine time > 0) instead of repaying the run from t=0;
* a SIGKILLed fleet manager's campaign resumes from the journal
  exactly-once — completed jobs stay completed, the remainder finishes,
  and one federated scrape still names every job;
* a SIGTERMed manager drains gracefully, exits 0, and leaves a clean,
  immediately-resumable journal behind.

Plus the satellite regression: ``fleet run`` must exit non-zero when a
job ultimately fails after its retries (a CI gate reads this).
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import RTMClient
from repro.fleet import (
    FleetGateway,
    FleetManager,
    JobQueue,
    JobSpec,
    replay_journal,
)

pytestmark = pytest.mark.slow

_REPO = Path(__file__).resolve().parents[2]
_STALL_FAULT = {"kind": "stall", "target": "*WriteBuffer*", "start": 5e-7}


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _spawn_fleet(argv, **popen_kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet"] + argv,
        cwd=str(_REPO), env=_cli_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        **popen_kwargs)


def _wait_for_completion_record(journal_path, proc, timeout=300.0):
    """Poll the live journal until at least one job has a durable
    ``complete`` record; returns the completed job ids."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read().decode(errors="replace")
            pytest.fail(f"fleet manager exited early "
                        f"(rc={proc.returncode}):\n{out}")
        if os.path.exists(journal_path):
            replay = replay_journal(str(journal_path))
            completed = sorted(
                job_id for job_id, job in replay.jobs.items()
                if job["state"] == "completed")
            if completed:
                return completed
        time.sleep(0.25)
    pytest.fail("no job completed within the wall budget")


# ----------------------------------------------------------------------
# Checkpoint/restore: a stall-killed attempt resumes warm
# ----------------------------------------------------------------------
def test_stall_killed_retry_resumes_from_checkpoint(tmp_path):
    """Attempt 0 is stalled and aborted by the watchdog; the retry must
    restart from the last good checkpoint — engine time > 0 — not from
    t=0, and the recovery must be visible in the federated metrics."""
    queue = JobQueue()
    spec = JobSpec("fir-resume", "fir", params={"num_samples": 8192},
                   max_retries=1)
    spec.fault = dict(_STALL_FAULT)
    queue.submit(spec)
    manager = FleetManager(
        queue, num_workers=1,
        worker_args=["--checkpoint-dir", str(tmp_path),
                     "--checkpoint-events", "2000"])
    gateway = FleetGateway(manager)
    gateway.start()
    manager.start()
    try:
        assert manager.wait(timeout=300), json.dumps(manager.status())
        metrics = RTMClient(gateway.url).metrics_text()
    finally:
        manager.stop()
        gateway.stop()

    job = queue.get("fir-resume")
    assert job.state == "completed"
    assert job.attempt == 1  # the resumed retry won

    # The retry restored mid-run state, not a cold platform.
    resume = job.result["resume"]
    assert resume is not None and "error" not in resume, resume
    assert resume["path"] == str(tmp_path / "fir-resume.rtm")
    assert resume["sim_time"] > 0.0
    assert resume["events"] > 0

    # The failed attempt's post-mortem carries the watchdog verdict and
    # the escalation checkpoint it persisted before aborting.
    (failure,) = job.failures
    watchdog = failure["post_mortem"]["watchdog"]
    assert watchdog["verdict"] == "aborted"
    assert watchdog["resume_checkpoint"] == str(tmp_path /
                                                "fir-resume.rtm")

    # The manager cached the announced checkpoint and exposes it.
    checkpoint = manager.status()["checkpoints"]["fir-resume"]
    assert checkpoint["path"] == resume["path"]

    # Recovery federates: the resumed job's registry counts the resume
    # and reports the sim time it restarted from.
    assert 'rtm_job_resumes_total' in metrics
    assert re.search(r'rtm_job_resume_sim_time\{[^}]*job="fir-resume"'
                     r'[^}]*\} [0-9.e+-]+', metrics) or \
        'rtm_job_resume_sim_time' in metrics


# ----------------------------------------------------------------------
# Journal resume: a SIGKILLed manager's campaign finishes exactly-once
# ----------------------------------------------------------------------
def test_sigkilled_manager_campaign_resumes_exactly_once(tmp_path):
    journal = tmp_path / "campaign.wal"
    status_out = tmp_path / "fleet_status.json"
    metrics_out = tmp_path / "metrics.prom"

    proc = _spawn_fleet(["run", "--workers", "2",
                         "--workloads", "fir,kmeans",
                         "--chiplets", "1,2,3",
                         "--journal", str(journal),
                         "--timeout", "600"])
    try:
        completed_before_kill = _wait_for_completion_record(
            str(journal), proc)
        # kill -9: no atexit, no signal handler, no compaction — the
        # journal tail is whatever the last fsync made durable.
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stdout.close()
    assert proc.returncode == -signal.SIGKILL

    result = subprocess.run(
        [sys.executable, "-m", "repro", "fleet", "resume", str(journal),
         "--workers", "2", "--timeout", "600",
         "--status-out", str(status_out),
         "--metrics-out", str(metrics_out)],
        cwd=str(_REPO), env=_cli_env(), capture_output=True, text=True,
        timeout=700)
    assert result.returncode == 0, result.stdout + result.stderr
    assert re.search(r"replayed \d+ journal records", result.stdout)

    # Exactly-once: jobs completed before the kill were never re-run.
    for job_id in completed_before_kill:
        assert f"resuming {job_id}" not in result.stdout

    status = json.loads(status_out.read_text())
    jobs = {j["spec"]["job_id"]: j for j in status["jobs"]}
    assert len(jobs) == 6
    assert status["summary"]["completed"] == 6
    assert status["summary"]["failed"] == 0
    assert status["drained"]

    # One federated scrape names every job — including the pre-kill
    # completions, whose final expositions rode the journal.
    metrics = metrics_out.read_text()
    for job_id in jobs:
        assert f'job="{job_id}"' in metrics, job_id
    assert 'rtm_fleet_jobs{state="completed"} 6' in metrics

    # Atomic artifacts: no torn temp files left beside the outputs.
    assert not list(tmp_path.glob("*.tmp"))


# ----------------------------------------------------------------------
# Graceful drain: SIGTERM is not a failure
# ----------------------------------------------------------------------
def test_sigterm_drains_gracefully_and_leaves_resumable_journal(tmp_path):
    journal = tmp_path / "campaign.wal"
    proc = _spawn_fleet(["run", "--workers", "1",
                         "--workloads", "fir",
                         "--chiplets", "1,2,3",
                         "--journal", str(journal),
                         "--timeout", "600"])
    try:
        _wait_for_completion_record(str(journal), proc)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=180)
    finally:
        if proc.poll() is None:
            proc.kill()
    text = out.decode(errors="replace")
    assert proc.returncode == 0, text  # being told to stop != failing
    assert "interrupted: campaign drained gracefully" in text

    # The journal left behind is clean (compacted, no crash damage) and
    # replays to a resumable campaign.
    replay = replay_journal(str(journal))
    assert not replay.torn_tail
    assert replay.corrupt_records == 0
    assert len(replay.jobs) == 3
    counts = replay.counts()
    assert counts["completed"] >= 1
    queue, resumed = replay.build_queue()
    assert queue.counts()["completed"] == counts["completed"]
    assert len(resumed) == 3 - counts["completed"]


# ----------------------------------------------------------------------
# Satellite regression: job failure must reach the exit code
# ----------------------------------------------------------------------
def test_fleet_run_propagates_job_failure_in_exit_code(tmp_path):
    """--crash-first with no retries leaves one permanently-failed job;
    the CLI must exit 1, and its artifacts must still land atomically."""
    from repro.cli import main

    status_out = tmp_path / "status.json"
    rc = main(["fleet", "run", "--workers", "1",
               "--workloads", "fir", "--chiplets", "1",
               "--max-retries", "0", "--crash-first",
               "--timeout", "300",
               "--status-out", str(status_out)])
    assert rc == 1

    status = json.loads(status_out.read_text())
    assert status["summary"]["failed"] == 1
    assert status["summary"]["completed"] == 0
    assert not list(tmp_path.glob("*.tmp"))
