"""The warm worker's reset: back-to-back jobs must not share state.

A warm worker keeps its process (interpreter, imports, HTTP server)
across jobs and rebuilds the simulation object graph per job.  These
tests run consecutive jobs through one server — exactly what
``serve()`` does per ``run`` command — and check the second job's
metrics exposition, trace window and fault machinery carry nothing
over from the first.
"""

import re

import pytest

from repro.core import Monitor
from repro.core.server import RTMServer
from repro.fleet.protocol import FrameDecoder
from repro.fleet.queue import JobSpec
from repro.fleet.worker import WorkerSettings, _execute_job

pytestmark = pytest.mark.slow


def _spec(job_id, **kwargs):
    kwargs.setdefault("params", {"num_samples": 2048})
    spec = JobSpec(job_id, "fir", **kwargs)
    spec.validate()
    return spec


def _events_from(capsys):
    return list(FrameDecoder().iter_text(capsys.readouterr().out))


def _sample_value(exposition, family):
    match = re.search(rf"^{family}(?:{{[^}}]*}})? (\S+)$",
                      exposition, re.MULTILINE)
    assert match is not None, f"{family} missing from exposition"
    return float(match.group(1))


@pytest.fixture()
def warm_server():
    server = RTMServer(Monitor())
    server.start()
    yield server
    server.stop()


def test_identical_jobs_produce_identical_independent_metrics(
        warm_server, capsys):
    """Same spec twice on one worker: if engine time, metric counters
    or trace records bled between jobs, the second run's numbers would
    drift (e.g. doubled counters).  They must match the first's."""
    settings = WorkerSettings()
    assert _execute_job(_spec("a", trace=True), 0, warm_server,
                        settings)
    assert _execute_job(_spec("b", trace=True), 0, warm_server,
                        settings)
    events = _events_from(capsys)

    dones = {e["job_id"]: e for e in events if e["event"] == "done"}
    assert set(dones) == {"a", "b"}
    a, b = dones["a"], dones["b"]
    # A deterministic workload re-run from a clean slate reproduces
    # exactly; any bleed shows up as drift in these totals.
    assert a["events"] == b["events"] > 0
    assert a["sim_time"] == b["sim_time"] > 0

    # Trace windows are per-job ring stores, so their volumes match too.
    assert a["trace"]["store"]["recorded"] == \
        b["trace"]["store"]["recorded"] > 0
    assert b["trace"]["store"]["dropped"] == a["trace"]["store"]["dropped"]

    finals = {e["job_id"]: e["metrics_text"] for e in events
              if e["event"] == "final-metrics"}
    assert set(finals) == {"a", "b"}
    for family in ("rtm_engine_events_total",
                   "rtm_engine_sim_time_seconds"):
        assert _sample_value(finals["a"], family) == \
            _sample_value(finals["b"], family) > 0


def test_fault_machinery_does_not_survive_into_the_next_job(
        warm_server, capsys):
    """Job one is sabotaged with a stall fault and aborted by the
    watchdog; job two on the same worker must run clean — no armed
    fault, no watchdog verdict, a completed run."""
    settings = WorkerSettings()
    sabotaged = _spec("sabotaged",
                      fault={"kind": "stall", "target": "*WriteBuffer*",
                             "start": 5e-7})
    assert not _execute_job(sabotaged, 0, warm_server, settings)
    assert _execute_job(_spec("clean"), 0, warm_server, settings)
    events = _events_from(capsys)

    results = {e["job_id"]: e for e in events
               if e["event"] in ("done", "failed")}
    assert results["sabotaged"]["ok"] is False
    assert results["sabotaged"]["watchdog"]["verdict"] == "aborted"
    assert results["sabotaged"]["fault_stats"]

    clean = results["clean"]
    assert clean["ok"] is True
    assert clean["run_state"] == "completed"
    assert clean["fault_stats"] == {}  # no injector carried over
    # A clean run's watchdog has no incident to report.
    assert clean["watchdog"] is None


def test_the_server_spans_jobs_but_fronts_each_jobs_monitor(
        warm_server, capsys):
    """The worker's URL is process-lifetime; what it serves is not:
    each job rebinds the server to its own fresh monitor."""
    settings = WorkerSettings()
    url_before = warm_server.url
    monitors = []
    for job_id in ("a", "b"):
        _execute_job(_spec(job_id), 0, warm_server, settings)
        monitors.append(warm_server.monitor)
    assert warm_server.url == url_before
    assert monitors[0] is not monitors[1]
    _events_from(capsys)  # drain capture
