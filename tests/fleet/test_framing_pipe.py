"""Framing over a *real* OS pipe: chunk boundaries chosen by the
kernel, torn writers, and the 8 MB oversized-line guard.

The in-memory framing tests slice byte strings by hand; these push the
same frames through ``os.pipe()`` so the chunking is whatever
``os.read`` actually returns.  They also pin the two loss-visibility
guarantees the shard outbox relies on: an oversized frame is *counted*
(``decoder.oversized``), never silently swallowed, and
:func:`split_batches` keeps every sender frame under the cap so the
counter stays at zero in correct use.
"""

import io
import json
import os
import threading

import pytest

from repro.fleet.protocol import (
    CONTROL_PREFIX,
    FrameDecoder,
    emit,
    split_batches,
)
from repro.fleet.protocol import _MAX_LINE_BYTES


def _pump(write_fd, read_fd, decoder):
    """Close the writer, then drain the reader through the decoder the
    way the manager does: read1-sized chunks until EOF, then flush."""
    os.close(write_fd)
    events = []
    while True:
        chunk = os.read(read_fd, 65536)
        if not chunk:
            break
        events.extend(decoder.feed(chunk))
    events.extend(decoder.flush())
    os.close(read_fd)
    return events


def test_emit_round_trips_through_pipe_chunks():
    read_fd, write_fd = os.pipe()
    payloads = [{"event": "progress", "job_id": f"j{i}", "n": i,
                 "blob": "x" * 3000} for i in range(200)]

    # ~600 KB exceeds the pipe's capacity, so the writer must run
    # concurrently with the draining reader — exactly the live
    # manager/worker topology.
    def _write():
        writer = io.TextIOWrapper(
            os.fdopen(write_fd, "wb", closefd=False))
        for payload in payloads:
            emit(payload, stream=writer)
        writer.flush()
        writer.detach()

    producer = threading.Thread(target=_write)
    producer.start()
    decoder = FrameDecoder()
    events = []
    received = 0
    while received < len(payloads):
        chunk = os.read(read_fd, 65536)
        assert chunk, "writer closed early"
        fresh = decoder.feed(chunk)
        events.extend(fresh)
        received += len(fresh)
    producer.join()
    events.extend(_pump(write_fd, read_fd, decoder))
    assert events == payloads
    assert decoder.errors == 0
    assert decoder.oversized == 0


def test_torn_frame_at_eof_is_counted_not_parsed():
    read_fd, write_fd = os.pipe()
    os.write(write_fd, (CONTROL_PREFIX + '{"event": "done"}\n').encode())
    # The worker dies mid-write: no trailing newline, truncated JSON.
    os.write(write_fd, (CONTROL_PREFIX + '{"event": "fin').encode())
    decoder = FrameDecoder()
    events = _pump(write_fd, read_fd, decoder)
    assert events == [{"event": "done"}]
    assert decoder.errors == 1


def test_oversized_line_is_dropped_and_counted():
    read_fd, write_fd = os.pipe()
    decoder = FrameDecoder()
    # A single frame beyond the cap, written newline-free so the
    # decoder must buffer it: it has to give up without ballooning.
    blob = b"g" * (_MAX_LINE_BYTES + 4096)
    view = memoryview(blob)
    events = []
    offset = 0
    while offset < len(view):
        offset += os.write(write_fd, view[offset:offset + 65536])
        events.extend(decoder.feed(os.read(read_fd, 65536)))
    os.write(write_fd, (b"\n" + CONTROL_PREFIX.encode() +
                        b'{"event": "after"}\n'))
    events.extend(_pump(write_fd, read_fd, decoder))
    assert decoder.oversized == 1
    # Loss is visible, and the channel recovers for the next frame.
    assert {"event": "after"} in events


def test_split_batches_keeps_every_frame_under_the_cap():
    items = [{"msg": {"kind": "net", "payload": "z" * 900}, "at": i}
             for i in range(5000)]
    batches = split_batches(items, max_bytes=64 * 1024)
    assert [i for b in batches for i in b] == items  # nothing lost
    assert len(batches) > 1
    for batch in batches:
        assert len(json.dumps(batch)) <= 64 * 1024
    # Each batch survives framing comfortably under the decoder cap.
    assert all(len(json.dumps(b)) < _MAX_LINE_BYTES for b in batches)


def test_split_batches_single_huge_item_still_ships():
    huge = {"blob": "y" * 10000}
    batches = split_batches([{"a": 1}, huge, {"b": 2}], max_bytes=1024)
    assert [i for b in batches for i in b] == [{"a": 1}, huge, {"b": 2}]
    assert [huge] in batches  # alone in its own over-budget chunk


def test_split_batches_rejects_nonpositive_budget():
    for bad in (0, -1):
        with pytest.raises(ValueError):
            split_batches([{"a": 1}], max_bytes=bad)
