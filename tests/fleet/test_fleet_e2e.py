"""End-to-end fleet campaigns with real worker subprocesses.

Two live campaigns back the PR's acceptance criteria:

* ``fleet4``: a 4-worker pool drains a 6-job workload x chiplet-count
  sweep in which one job's first attempt is sabotaged with an injected
  stall fault (``repro.faults`` via the worker's injector).  The
  watchdog aborts the stalled worker, the restart policy retries the
  job on a fresh worker, and the sweep completes.  One federated
  ``/metrics`` scrape taken *after* the campaign must still carry every
  completed job's ``worker=`` label.
* ``smoke2``: the satellite's smaller variant — 2 workers, 4 queued
  jobs, one induced kill, both surviving workers' labels federated.
"""

import json

import pytest

from repro.core import RTMClient
from repro.fleet import FleetGateway, FleetManager, JobQueue, JobSpec

#: The canonical induced crash: a stall fault pins a write buffer so the
#: simulation stops making progress; the fleet-tuned watchdog confirms
#: the hang and aborts within a couple of seconds.
_STALL_FAULT = {"kind": "stall", "target": "*WriteBuffer*",
                "start": 5e-7}

pytestmark = pytest.mark.slow


def _run_campaign(specs, num_workers, timeout=300.0):
    queue = JobQueue()
    queue.submit_all(specs)
    manager = FleetManager(queue, num_workers=num_workers)
    gateway = FleetGateway(manager)
    gateway.start()
    manager.start()
    try:
        assert manager.wait(timeout=timeout), \
            f"campaign did not drain: {json.dumps(manager.status())}"
        client = RTMClient(gateway.url)
        status = client.fleet_status()
        metrics = client.metrics_text()
    finally:
        manager.stop()
        gateway.stop()
    return queue, status, metrics


@pytest.fixture(scope="module")
def fleet4():
    specs = [JobSpec(f"{workload}-c{chiplets}", workload,
                     chiplets=chiplets, max_retries=1)
             for workload in ("fir", "kmeans")
             for chiplets in (1, 2, 3)]
    assert len(specs) >= 6
    specs[0].fault = dict(_STALL_FAULT)  # sabotage fir-c1's attempt 0
    return _run_campaign(specs, num_workers=4)


def test_sweep_drains_with_every_job_completed(fleet4):
    queue, status, _metrics = fleet4
    summary = status["summary"]
    assert summary["completed"] == 6
    assert summary["failed"] == 0
    assert summary["queued"] == 0 and summary["running"] == 0
    assert status["drained"]
    assert queue.done


def test_induced_crash_is_retried_and_survived(fleet4):
    queue, status, _metrics = fleet4
    crashed = queue.get("fir-c1")
    assert crashed.state == "completed"
    assert crashed.attempt == 1          # second attempt won
    assert len(crashed.workers) == 2     # two distinct workers spent
    assert status["summary"]["retries"] == 1

    (failure,) = crashed.failures
    post_mortem = failure["post_mortem"]
    assert post_mortem["exit_code"] == 1
    # The watchdog's verdict rode the control channel into the
    # post-mortem: the hang was confirmed and aborted, not guessed at.
    assert post_mortem["watchdog"] is not None
    assert post_mortem["watchdog"]["verdict"] == "aborted"
    assert post_mortem["watchdog"]["stuck_buffers"]
    assert post_mortem["fault_stats"]


def test_unsabotaged_jobs_complete_first_try(fleet4):
    queue, _status, _metrics = fleet4
    for job in queue.jobs():
        if job.spec.job_id == "fir-c1":
            continue
        assert job.attempt == 0
        assert job.failures == []
        assert job.result["run_state"] == "completed"


def test_federated_scrape_carries_every_completed_jobs_worker(fleet4):
    queue, _status, metrics = fleet4
    # Every worker that *completed* a job must appear in one post-
    # campaign scrape (the crashed attempt's worker legitimately may
    # not: it died without a final exposition).
    completing_workers = {job.result["worker_id"]
                          for job in queue.jobs()}
    assert len(completing_workers) == 6  # 6 jobs, distinct processes
    for worker_id in completing_workers:
        assert f'worker="{worker_id}"' in metrics, worker_id
    # Labelled simulation families and un-labelled fleet families
    # coexist in the same document.
    assert "rtm_engine_events_total{worker=" in metrics
    assert 'rtm_fleet_jobs{state="completed"} 6' in metrics
    assert "rtm_fleet_job_retries_total 1" in metrics


def test_workers_view_records_the_whole_pool_history(fleet4):
    _queue, status, _metrics = fleet4
    workers = status["workers"]
    assert len(workers) == 7  # 6 completions + 1 crashed attempt
    assert all(w["state"] == "exited" for w in workers)
    crashed = [w for w in workers if w["exit_code"] != 0]
    assert len(crashed) == 1
    assert crashed[0]["job_id"] == "fir-c1"


def test_smoke2_two_workers_four_jobs_one_kill():
    specs = [JobSpec(f"fir-s{i}", "fir", chiplets=1, max_retries=1)
             for i in range(4)]
    specs[1].fault = dict(_STALL_FAULT)
    queue, status, metrics = _run_campaign(specs, num_workers=2)

    assert status["summary"]["completed"] == 4
    assert status["summary"]["retries"] == 1
    assert queue.get("fir-s1").state == "completed"
    assert len(queue.get("fir-s1").workers) == 2

    labels = {job.result["worker_id"] for job in queue.jobs()}
    assert len(labels) == 4
    for worker_id in labels:
        assert f'worker="{worker_id}"' in metrics, worker_id
