"""End-to-end fleet campaigns with real worker subprocesses.

Three live campaigns back the PR's acceptance criteria:

* ``fleet4``: a warm 4-worker pool drains a 6-job workload x
  chiplet-count sweep in which one job's first attempt is sabotaged
  with an injected stall fault (``repro.faults`` via the worker's
  injector).  The watchdog aborts the stalled *run*, the worker
  survives (a warm worker outlives its jobs' failures), the restart
  policy retries the job, and the sweep completes.  One federated
  ``/metrics`` scrape taken *after* the campaign must still carry every
  completed job's ``(worker, job)`` labels.
* ``test_killed_worker_is_recycled...``: a worker is SIGKILLed mid-job
  — the process-death path, as opposed to the run-failure path above.
  The manager must requeue the job with a post-mortem, spawn a
  replacement worker within the restart budget, and still drain.
* ``test_cold_mode...``: the legacy one-subprocess-per-attempt
  dispatch stays alive behind ``warm=False`` (it is the throughput
  benchmark's baseline).
"""

import json
import os
import signal
import time

import pytest

from repro.core import RTMClient
from repro.fleet import FleetGateway, FleetManager, JobQueue, JobSpec

#: The canonical induced crash: a stall fault pins a write buffer so the
#: simulation stops making progress; the fleet-tuned watchdog confirms
#: the hang and aborts within a couple of seconds.
_STALL_FAULT = {"kind": "stall", "target": "*WriteBuffer*",
                "start": 5e-7}

pytestmark = pytest.mark.slow


def _run_campaign(specs, num_workers, timeout=300.0, **manager_kwargs):
    queue = JobQueue()
    queue.submit_all(specs)
    manager = FleetManager(queue, num_workers=num_workers,
                           **manager_kwargs)
    gateway = FleetGateway(manager)
    gateway.start()
    manager.start()
    try:
        assert manager.wait(timeout=timeout), \
            f"campaign did not drain: {json.dumps(manager.status())}"
        client = RTMClient(gateway.url)
        http_status = client.fleet_status()
        assert http_status["gateway_url"] == gateway.url
        assert http_status["summary"] == queue.counts()
        metrics = client.metrics_text()
    finally:
        manager.stop()
        gateway.stop()
    # Post-stop status: every worker has been shut down and reaped, so
    # the workers view is the pool's complete, settled history.
    return queue, manager.status(), metrics


@pytest.fixture(scope="module")
def fleet4():
    specs = [JobSpec(f"{workload}-c{chiplets}", workload,
                     chiplets=chiplets, max_retries=1)
             for workload in ("fir", "kmeans")
             for chiplets in (1, 2, 3)]
    assert len(specs) >= 6
    specs[0].fault = dict(_STALL_FAULT)  # sabotage fir-c1's attempt 0
    return _run_campaign(specs, num_workers=4)


def test_sweep_drains_with_every_job_completed(fleet4):
    queue, status, _metrics = fleet4
    summary = status["summary"]
    assert summary["completed"] == 6
    assert summary["failed"] == 0
    assert summary["queued"] == 0 and summary["running"] == 0
    assert status["drained"]
    assert queue.done


def test_induced_stall_is_retried_and_survived(fleet4):
    queue, status, _metrics = fleet4
    crashed = queue.get("fir-c1")
    assert crashed.state == "completed"
    assert crashed.attempt == 1          # second attempt won
    assert len(crashed.workers) == 2     # two claims spent
    assert status["summary"]["retries"] == 1

    (failure,) = crashed.failures
    post_mortem = failure["post_mortem"]
    # The stall aborted the *run*, not the worker: a warm worker
    # survives its job's failure and keeps serving.
    assert post_mortem["worker_alive"] is True
    assert post_mortem["exit_code"] is None
    # The watchdog's verdict rode the control channel into the
    # post-mortem: the hang was confirmed and aborted, not guessed at.
    assert post_mortem["watchdog"] is not None
    assert post_mortem["watchdog"]["verdict"] == "aborted"
    assert post_mortem["watchdog"]["stuck_buffers"]
    assert post_mortem["fault_stats"]


def test_unsabotaged_jobs_complete_first_try(fleet4):
    queue, _status, _metrics = fleet4
    for job in queue.jobs():
        if job.spec.job_id == "fir-c1":
            continue
        assert job.attempt == 0
        assert job.failures == []
        assert job.result["run_state"] == "completed"


def test_federated_scrape_carries_every_job(fleet4):
    queue, _status, metrics = fleet4
    # One post-campaign scrape must carry every job's final series,
    # each labelled with the job id and the worker that completed it —
    # under a warm pool one worker completes many jobs, so the worker
    # label alone no longer identifies a run.
    for job in queue.jobs():
        job_id = job.spec.job_id
        worker_id = job.result["worker_id"]
        assert f'worker="{worker_id}",job="{job_id}"' in metrics, job_id
    # Labelled simulation families and un-labelled fleet families
    # coexist in the same document.
    assert "rtm_engine_events_total{worker=" in metrics
    assert 'rtm_fleet_jobs{state="completed"} 6' in metrics
    assert "rtm_fleet_job_retries_total 1" in metrics
    # No worker crashed, so no recycle happened.
    assert "rtm_fleet_worker_restarts_total 0" in metrics


def test_warm_pool_spans_jobs_instead_of_spawning_per_attempt(fleet4):
    _queue, status, _metrics = fleet4
    workers = status["workers"]
    # 7 attempts were dispatched, but only 4 processes ever existed.
    assert len(workers) == 4
    assert all(w["state"] == "exited" for w in workers)
    assert all(w["exit_code"] == 0 for w in workers)
    assert sum(w["jobs_done"] for w in workers) == 6
    assert status["worker_restarts"] == 0


def test_killed_worker_is_recycled_and_its_job_retried():
    """SIGKILL a worker mid-job: the process-death path.  The job must
    requeue with an exit -9 post-mortem, a replacement worker must
    appear within the restart budget, and the campaign must drain."""
    queue = JobQueue()
    queue.submit_all([JobSpec(f"fir-k{i}", "fir",
                              params={"num_samples": 8192},
                              max_retries=1)
                      for i in range(6)])
    manager = FleetManager(queue, num_workers=4)
    gateway = FleetGateway(manager)
    gateway.start()
    manager.start()
    try:
        assert manager.wait_ready(timeout=60)
        victim = None
        deadline = time.monotonic() + 60
        while victim is None and time.monotonic() < deadline:
            targets = manager.scrape_targets()
            if targets:
                victim = targets[0]
            else:
                time.sleep(0.01)
        assert victim is not None, "no job ever started"
        pid = next(w["pid"] for w in manager.status()["workers"]
                   if w["worker_id"] == victim["worker_id"])
        os.kill(pid, signal.SIGKILL)

        assert manager.wait(timeout=240), json.dumps(manager.status())
        metrics = RTMClient(gateway.url).metrics_text()
    finally:
        manager.stop()
        gateway.stop()

    status = manager.status()
    assert status["summary"]["completed"] == 6
    assert status["summary"]["failed"] == 0
    assert status["worker_restarts"] == 1
    assert "rtm_fleet_worker_restarts_total 1" in metrics

    job = queue.get(victim["job_id"])
    assert job.state == "completed"
    (failure,) = job.failures
    assert failure["post_mortem"]["exit_code"] == -signal.SIGKILL
    assert "exited -9 mid-job" in failure["error"]

    workers = {w["worker_id"]: w for w in status["workers"]}
    assert len(workers) == 5  # 4 original + 1 replacement
    assert workers[victim["worker_id"]]["exit_code"] == -signal.SIGKILL
    # The victim's final exposition still federates: the job's retry
    # shipped one through the control channel.
    assert f'job="{victim["job_id"]}"' in metrics


def test_smoke2_two_workers_four_jobs_one_stall():
    specs = [JobSpec(f"fir-s{i}", "fir", chiplets=1, max_retries=1)
             for i in range(4)]
    specs[1].fault = dict(_STALL_FAULT)
    queue, status, metrics = _run_campaign(specs, num_workers=2)

    assert status["summary"]["completed"] == 4
    assert status["summary"]["retries"] == 1
    assert queue.get("fir-s1").state == "completed"
    assert len(queue.get("fir-s1").workers) == 2

    for job in queue.jobs():
        assert (f'worker="{job.result["worker_id"]}"'
                f',job="{job.spec.job_id}"') in metrics, job.spec.job_id


def test_cold_mode_still_dispatches_one_process_per_attempt():
    specs = [JobSpec(f"fir-cold{i}", "fir",
                     params={"num_samples": 2048}) for i in range(3)]
    queue, status, metrics = _run_campaign(specs, num_workers=2,
                                           warm=False)
    assert status["summary"]["completed"] == 3
    assert status["warm"] is False
    workers = status["workers"]
    assert len(workers) == 3  # one process per attempt
    assert all(w["state"] == "exited" for w in workers)
    for job in queue.jobs():
        assert f'job="{job.spec.job_id}"' in metrics
