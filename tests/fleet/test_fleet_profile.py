"""Fleet profiling: workers run the continuous profiler, ship their
summaries up the control channel, and the gateway merges them into the
campaign-wide ``/api/fleet/profile``.
"""

import json

import pytest

from repro.core import RTMClient, RTMClientError
from repro.fleet import FleetGateway, FleetManager, JobQueue, JobSpec
from repro.profile import LAYERS, SPEEDSCOPE_SCHEMA

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def profiled_campaign():
    specs = [JobSpec(f"fir-c{chiplets}", "fir", chiplets=chiplets)
             for chiplets in (1, 2)]
    queue = JobQueue()
    queue.submit_all(specs)
    manager = FleetManager(
        queue, num_workers=2,
        worker_args=["--profile", "--profile-interval", "0.01"])
    gateway = FleetGateway(manager)
    gateway.start()
    manager.start()
    try:
        assert manager.wait(timeout=300.0), \
            f"campaign did not drain: {json.dumps(manager.status())}"
        client = RTMClient(gateway.url)
        yield manager, client
    finally:
        manager.stop()
        gateway.stop()


def test_every_job_ships_a_profile_summary(profiled_campaign):
    manager, _ = profiled_campaign
    profiles = manager.profiles()
    assert set(profiles) == {"fir-c1", "fir-c2"}
    for job_id, entry in profiles.items():
        assert entry["worker_id"], job_id
        summary = entry["summary"]
        assert summary["samples"] > 0
        assert summary["layers"]
        assert set(summary["layers"]) <= set(LAYERS)


def test_gateway_merges_campaign_profile(profiled_campaign):
    _, client = profiled_campaign
    doc = client.fleet_profile()
    assert set(doc["jobs"]) == {"fir-c1", "fir-c2"}
    merged = doc["profile"]
    assert merged["jobs"] == 2
    assert merged["samples"] > 0
    # Worker jobs spend their active time in the simulator substrate.
    layers = {k: v for k, v in merged["layers"].items()
              if v > 0 and k != "idle"}
    assert "engine" in layers


def test_gateway_speedscope_format(profiled_campaign):
    _, client = profiled_campaign
    doc = json.loads(json.dumps(client.fleet_profile(
        format="speedscope")))
    assert doc["$schema"] == SPEEDSCOPE_SCHEMA
    assert doc["profiles"]
    assert doc["shared"]["frames"]


def test_gateway_rejects_unknown_format(profiled_campaign):
    _, client = profiled_campaign
    with pytest.raises(RTMClientError):
        client.fleet_profile(format="bogus")
