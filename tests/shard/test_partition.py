"""Partition math: every chiplet on exactly one shard, names route."""

import pytest

from repro.akita.errors import ConfigurationError
from repro.gpu.platform import GPUPlatformConfig
from repro.shard import chiplet_owners, owner_of_name


def _config(n):
    return GPUPlatformConfig.small(num_chiplets=n)


@pytest.mark.parametrize("num_chiplets", [1, 2, 3, 4, 5, 8])
def test_every_chiplet_assigned_exactly_once(num_chiplets):
    config = _config(num_chiplets)
    for num_shards in range(1, num_chiplets + 1):
        blocks = config.partition_chiplets(num_shards)
        assert len(blocks) == num_shards
        flat = [c for block in blocks for c in block]
        assert sorted(flat) == list(range(num_chiplets)), (
            num_shards, blocks)


def test_uneven_split_sizes_differ_by_at_most_one():
    blocks = _config(5).partition_chiplets(3)
    sizes = [len(b) for b in blocks]
    assert sum(sizes) == 5
    assert max(sizes) - min(sizes) <= 1
    # Contiguous blocks, in order: chiplet c's block start never
    # precedes chiplet c-1's.
    assert blocks == [[0, 1], [2, 3], [4]]


def test_one_shard_is_the_degenerate_monolithic_case():
    blocks = _config(4).partition_chiplets(1)
    assert blocks == [[0, 1, 2, 3]]
    owners = chiplet_owners(blocks)
    assert set(owners.values()) == {0}


@pytest.mark.parametrize("bad", [0, -1, 5])
def test_bad_shard_counts_raise(bad):
    with pytest.raises(ConfigurationError):
        _config(4).partition_chiplets(bad)


def test_owner_of_name_routes_by_root_segment():
    owners = chiplet_owners(_config(4).partition_chiplets(2))
    assert owners == {0: 0, 1: 0, 2: 1, 3: 1}
    assert owner_of_name("GPU[0].SA[1].CU[2].ToL1", owners) == 0
    assert owner_of_name("GPU[3].RDMA.NetPort", owners) == 1
    # Host side belongs to the hub shard.
    assert owner_of_name("Driver.ToGPU", owners) == 0
    assert owner_of_name("InterChipletSwitch.Port2", owners) == 0
