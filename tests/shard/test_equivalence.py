"""A sharded run is the *same simulation* as the monolithic one.

The conservative window protocol may reorder wall-clock work between
processes, but committed architectural work must not change: the
instruction/workgroup/memory-request totals match the single-process
run exactly, and the per-family metric totals agree.  The workload
deliberately keeps ``page_locality`` at its default so roughly half of
all stores cross the shard boundary — this exercises the codec, the
window barrier, and the injection path as hard as the small scale
allows.
"""

from urllib.request import urlopen

import pytest

from repro.gpu.cu import ComputeUnit
from repro.gpu.platform import GPUPlatform, GPUPlatformConfig
from repro.metrics import SimMetrics, expose, family_total, parse_exposition
from repro.shard import ShardCoordinator
from repro.workloads import StoreStorm

_CONFIG = GPUPlatformConfig.small(num_chiplets=2)
_WORKLOAD = StoreStorm(num_workgroups=8, wavefronts_per_wg=2,
                       stores_per_wavefront=16)

# Families whose totals must survive sharding exactly: committed work.
_EXACT_FAMILIES = [
    "rtm_cu_instructions_total",
    "rtm_cu_wgs_completed_total",
    "rtm_cu_mem_reqs_total",
]
# Families allowed a small drift: boundary ferrying replaces in-process
# hops (switch traffic becomes codec traffic), and the windowed engine
# runs a handful of extra barrier events.
_NEAR_FAMILIES = [
    "rtm_cache_writes_total",
    "rtm_cache_reads_total",
]


def _monolithic():
    platform = GPUPlatform(_CONFIG)
    _WORKLOAD.enqueue(platform.driver)
    metrics = SimMetrics(platform.simulation)
    metrics.start()
    completed = platform.run()
    counters = {"instructions": 0, "wgs": 0, "mem_reqs": 0}
    for comp in platform.simulation.components:
        if isinstance(comp, ComputeUnit):
            counters["instructions"] += comp.num_instructions
            counters["wgs"] += comp.num_wgs_completed
            counters["mem_reqs"] += comp.num_mem_reqs
    return completed, counters, expose(metrics.registry)


@pytest.fixture(scope="module")
def runs():
    mono = _monolithic()
    coordinator = ShardCoordinator(_CONFIG, _WORKLOAD, 2,
                                   monitor=True, metrics=True)
    try:
        result = coordinator.run()
        federated = coordinator.federated_metrics()
        dashboard = None
        if result.dashboard_url:
            with urlopen(result.dashboard_url + "/metrics",
                         timeout=10) as rsp:
                dashboard = rsp.read().decode()
    finally:
        coordinator.close()
    return mono, result, federated, dashboard


def test_both_runs_complete(runs):
    (mono_ok, _, _), result, _, _ = runs
    assert mono_ok
    assert result.completed
    assert result.num_shards == 2


def test_committed_work_matches_exactly(runs):
    (_, counters, _), result, _, _ = runs
    assert result.instructions == counters["instructions"]
    assert result.wgs == counters["wgs"]
    assert result.mem_reqs == counters["mem_reqs"]
    # And the workload actually did something.
    assert result.instructions > 0
    assert result.boundary_messages > 0  # the boundary was exercised


def test_metric_family_totals_match(runs):
    (_, _, mono_text), _, federated, _ = runs
    mono = parse_exposition(mono_text)
    shard = parse_exposition(federated)
    for name in _EXACT_FAMILIES:
        mono_total, mono_n = family_total(mono, name)
        shard_total, shard_n = family_total(shard, name)
        assert mono_n and shard_n, name
        assert shard_total == mono_total, name
    for name in _NEAR_FAMILIES:
        mono_total, mono_n = family_total(mono, name)
        shard_total, shard_n = family_total(shard, name)
        assert mono_n and shard_n, name
        assert shard_total == pytest.approx(mono_total, rel=0.05), name


def test_coordinator_serves_one_federated_exposition(runs):
    _, _, federated, dashboard = runs
    # The HTTP gateway serves the same federation the API builds.
    assert dashboard is not None
    for text in (federated, dashboard):
        assert 'shard="0"' in text
        assert 'shard="1"' in text
        assert "rtm_shard_window_seconds" in text
        assert "rtm_shard_boundary_messages_total" in text
        assert "rtm_shard_barrier_wait_seconds_total" in text
        # Shard-side families arrive labelled, once per shard.
        assert text.count("rtm_cu_instructions_total{") >= 2
