"""The shard boundary layer: codec round-trips, proxy connection
semantics (local passthrough, remote export, quota, parked inbound),
and the injection path."""

import pytest

from repro.akita import Component, DirectConnection, Engine, Msg
from repro.gpu.mem import (
    DataReadyRsp,
    NetMsg,
    ReadReq,
    WriteDoneRsp,
    WriteReq,
)
from repro.gpu.platform import GPUPlatform, GPUPlatformConfig
from repro.gpu.protocol import KernelCompleteMsg, LaunchKernelMsg
from repro.shard import (
    BoundaryCodec,
    BoundaryInjector,
    ShardConnection,
    build_port_registry,
)
from repro.workloads import StoreStorm


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------

@pytest.fixture()
def rig():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    StoreStorm(num_workgroups=4, wavefronts_per_wg=1,
               stores_per_wavefront=2).enqueue(platform.driver)
    registry = build_port_registry(platform.simulation)
    codec = BoundaryCodec(registry, platform.driver)
    return platform, registry, codec


def test_launch_round_trip_resolves_kernel_by_index(rig):
    platform, registry, codec = rig
    kernel = platform.driver.kernels[0]
    msg = LaunchKernelMsg(registry["GPU[1].CommandProcessor.ToDriver"],
                          kernel, [1, 3])
    msg.src = registry["Driver.ToGPU"]
    decoded = codec.decode(codec.encode(msg))
    assert isinstance(decoded, LaunchKernelMsg)
    assert decoded.kernel is kernel  # identity, not a copy
    assert decoded.wg_ids == [1, 3]
    assert decoded.dst is msg.dst
    # src survives as a resolvable port: the CP records it as its
    # reply-to address for the completion.
    assert decoded.src is registry["Driver.ToGPU"]


def test_kernel_complete_round_trip(rig):
    _, registry, codec = rig
    msg = KernelCompleteMsg(registry["Driver.ToGPU"], launch_id=7)
    decoded = codec.decode(codec.encode(msg))
    assert isinstance(decoded, KernelCompleteMsg)
    assert decoded.launch_id == 7
    assert decoded.dst is registry["Driver.ToGPU"]


@pytest.mark.parametrize("cls", [ReadReq, WriteReq])
def test_net_mem_req_preserves_request_id(rig, cls):
    _, registry, codec = rig
    payload = cls(None, address=0x1200, access_bytes=4, pid=2)
    original_id = payload.id
    msg = NetMsg(registry["InterChipletSwitch.Port0"], payload,
                 final_dst=registry["GPU[1].RDMA.NetPort"],
                 origin=registry["GPU[0].RDMA.NetPort"])
    decoded = codec.decode(codec.encode(msg))
    assert isinstance(decoded, NetMsg)
    assert type(decoded.payload) is cls
    # The origin RDMA's transaction table is keyed by this id; the
    # remote side's response answers it.
    assert decoded.payload.id == original_id
    assert decoded.payload.address == 0x1200
    assert decoded.final_dst is registry["GPU[1].RDMA.NetPort"]
    assert decoded.origin is registry["GPU[0].RDMA.NetPort"]


def test_net_responses_round_trip(rig):
    _, registry, codec = rig
    ready = DataReadyRsp(None, respond_to=41, data_bytes=64)
    done = WriteDoneRsp(None, respond_to=42)
    for payload in (ready, done):
        msg = NetMsg(registry["InterChipletSwitch.Port1"], payload,
                     final_dst=registry["GPU[0].RDMA.NetPort"],
                     origin=registry["GPU[1].RDMA.NetPort"])
        decoded = codec.decode(codec.encode(msg))
        assert decoded.payload.respond_to == payload.respond_to
        assert decoded.payload.size_bytes == payload.size_bytes


def test_codec_rejects_unknown_messages_and_ports(rig):
    _, registry, codec = rig
    with pytest.raises(TypeError):
        codec.encode(Msg())
    with pytest.raises(ValueError):
        codec.decode({"kind": "kernel_complete", "dst": "No.Such.Port",
                      "src": None, "launch_id": 0})


# ---------------------------------------------------------------------------
# ShardConnection
# ---------------------------------------------------------------------------

class _Sink(Component):
    def __init__(self, name, engine, capacity=2):
        super().__init__(name, engine)
        self.inp = self.add_port("In", capacity)

    def handle(self, event):
        pass


class _Producer(Component):
    def __init__(self, name, engine):
        super().__init__(name, engine)
        self.out = self.add_port("Out", 2)
        self.wakeups = 0

    def notify_available(self, port):
        self.wakeups += 1

    def handle(self, event):
        pass


def _boundary(engine, latency=2e-9):
    exports = []
    conn = ShardConnection("B", engine, latency,
                           lambda msg, at: exports.append((msg, at)))
    return conn, exports


def test_adopted_local_pair_behaves_like_a_direct_connection():
    engine = Engine()
    prod, sink = _Producer("P", engine), _Sink("S", engine)
    original = DirectConnection("Orig", engine, 1e-9)
    original.plug_in(prod.out)
    original.plug_in(sink.inp)
    conn, exports = _boundary(engine)
    conn.adopt(prod.out)
    conn.adopt(sink.inp)
    msg = Msg()
    msg.dst = sink.inp
    assert prod.out.send(msg)
    engine.run()
    assert sink.inp.buf.size == 1
    assert exports == []  # both endpoints local: nothing exported


def test_remote_send_exports_with_arrival_time():
    engine = Engine()
    prod = _Producer("P", engine)
    conn, exports = _boundary(engine, latency=2e-9)
    conn.adopt(prod.out)
    remote = _Sink("R", engine).inp  # NOT adopted: remote
    msg = Msg()
    msg.dst = remote
    assert prod.out.send(msg)
    assert [m for m, _ in exports] == [msg]
    assert exports[0][1] == pytest.approx(engine.now + 2e-9)
    assert conn.exported_count == 1
    assert remote.buf.size == 0  # nothing delivered locally


def test_remote_quota_blocks_then_window_barrier_wakes():
    engine = Engine()
    prod = _Producer("P", engine)
    conn, exports = _boundary(engine)
    conn.adopt(prod.out)
    remote = _Sink("R", engine, capacity=1).inp
    quota = remote.buf.capacity * ShardConnection.QUOTA_FACTOR
    for _ in range(quota):
        msg = Msg()
        msg.dst = remote
        assert prod.out.send(msg)
    over = Msg()
    over.dst = remote
    assert not prod.out.send(over)  # quota exhausted this window
    assert len(exports) == quota
    assert prod.wakeups == 0
    conn.begin_window()
    assert prod.wakeups == 1  # blocked sender woken at the barrier
    assert prod.out.send(over)  # fresh quota
    assert len(exports) == quota + 1


def test_inbound_parks_on_full_buffer_and_drains_on_retrieve():
    engine = Engine()
    sink = _Sink("S", engine, capacity=1)
    conn, _ = _boundary(engine)
    conn.adopt(sink.inp)
    first, second = Msg(), Msg()
    first.dst = second.dst = sink.inp
    assert conn.deliver_inbound(first)
    assert not conn.deliver_inbound(second)  # buffer full: parked
    assert conn.parked_count == 1
    assert sink.inp.buf.size == 1
    # The component consuming its message frees the slot; the parked
    # message takes it before any sender is woken.
    assert sink.inp.retrieve_incoming() is first
    assert sink.inp.buf.size == 1
    assert sink.inp.retrieve_incoming() is second


def test_injector_delivers_through_the_adopted_connection():
    engine = Engine()
    sink = _Sink("S", engine, capacity=1)
    conn, _ = _boundary(engine)
    conn.adopt(sink.inp)
    injector = BoundaryInjector(engine)
    msg = Msg()
    msg.dst = sink.inp
    injector.inject(msg, deliver_at=5e-9)
    engine.run()
    assert engine.now == pytest.approx(5e-9)
    assert sink.inp.buf.size == 1
    assert injector.injected == 1


def test_injector_clamps_past_arrivals_to_now():
    engine = Engine()
    sink = _Sink("S", engine)
    conn, _ = _boundary(engine)
    conn.adopt(sink.inp)
    # Advance the clock past the nominal arrival.
    engine.run_window(1e-8)
    injector = BoundaryInjector(engine)
    msg = Msg()
    msg.dst = sink.inp
    injector.inject(msg, deliver_at=5e-9)  # in the past
    engine.run()
    assert sink.inp.buf.size == 1
