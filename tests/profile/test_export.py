"""Collapsed-stack and speedscope exporters."""

import json

from repro.profile import (SPEEDSCOPE_SCHEMA, collapsed_stacks,
                           frame_label, speedscope_document)

ENGINE = ("run", "/repo/src/repro/akita/engine.py", 150)
HOOKS = ("invoke_hooks", "/repo/src/repro/akita/hooks.py", 40)

STACKS = {
    "simulation": {
        (HOOKS, ENGINE): 0.25,   # leaf-first on the way in
        (ENGINE,): 0.5,
    },
    "server": {(("do_GET", "/x/repro/core/server.py", 9),): 0.1},
}


def test_frame_label_shortens_to_repro_tail():
    assert frame_label(ENGINE) == "run (repro/akita/engine.py:150)"
    assert frame_label(("f", "/usr/lib/python3.11/threading.py", 1)) \
        == "f (threading.py:1)"


def test_collapsed_stacks_root_first_with_role_prefix():
    text = collapsed_stacks(STACKS)
    lines = text.strip().splitlines()
    # Hottest simulation stack: root frame first, weight in integer µs.
    assert "simulation;run (repro/akita/engine.py:150) 500000" in lines
    assert ("simulation;run (repro/akita/engine.py:150);"
            "invoke_hooks (repro/akita/hooks.py:40) 250000") in lines
    assert any(line.startswith("server;") for line in lines)


def test_collapsed_stacks_role_filter_drops_prefix():
    text = collapsed_stacks(STACKS, role="simulation")
    lines = text.strip().splitlines()
    assert len(lines) == 2
    assert all(line.startswith("run (") for line in lines)


def test_speedscope_document_is_valid_and_role_split():
    doc = speedscope_document(STACKS, name="unit test")
    # Must survive a JSON round trip (the artifact the CI uploads).
    doc = json.loads(json.dumps(doc))
    assert doc["$schema"] == SPEEDSCOPE_SCHEMA
    assert doc["name"] == "unit test"
    profiles = {p["name"]: p for p in doc["profiles"]}
    assert set(profiles) == {"simulation", "server"}
    sim = profiles["simulation"]
    assert sim["type"] == "sampled"
    assert sim["unit"] == "seconds"
    assert len(sim["samples"]) == len(sim["weights"]) == 2
    assert abs(sim["endValue"] - 0.75) < 1e-9
    # Samples reference the shared frame table, root-first.
    frames = doc["shared"]["frames"]
    for sample in sim["samples"]:
        assert all(0 <= idx < len(frames) for idx in sample)
    two_deep = next(s for s in sim["samples"] if len(s) == 2)
    assert frames[two_deep[0]]["name"].startswith("run (")
    assert frames[two_deep[1]]["name"].startswith("invoke_hooks (")


def test_speedscope_document_skips_empty_weights():
    doc = speedscope_document({"simulation": {(ENGINE,): 0.0}})
    assert doc["profiles"][0]["samples"] == []
