"""Acceptance end-to-end: a monitored simulation under continuous
profiling decomposes its overhead into named layers (the layered
Figure 7), exports a loadable speedscope document, and two recorded
campaigns diff per layer through the historian.
"""

import json

import pytest

from repro.core import Monitor
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.historian import Historian
from repro.metrics import expose
from repro.profile import SPEEDSCOPE_SCHEMA
from repro.workloads import FIR


@pytest.fixture(scope="module")
def profiled_run():
    """One real monitored run: metrics + sampler + rolling profiler."""
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    FIR(num_taps=64).enqueue(platform.driver)
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    monitor.ensure_sim_metrics().start()
    monitor.start_sampler()
    profiler = monitor.start_continuous_profiling(interval=0.004,
                                                  window_seconds=0.25)
    ok = platform.run()
    profiler.stop()
    monitor.stop_server()
    assert ok, "monitored run did not complete"
    assert profiler.status()["samples"] > 50
    return monitor, profiler


def test_attribution_names_layers_with_engine_dominant(profiled_run):
    """Figure 7's 51–163% decomposed: at least three named layers, and
    the simulator substrate (engine dispatch + hook fan-out) is where
    a monitored simulation actually spends its active time."""
    _, profiler = profiled_run
    report = profiler.attribution()
    layers = {name: sec for name, sec in report["layers"].items()
              if sec > 0}
    assert len(layers) >= 3, layers
    active = {name: sec for name, sec in layers.items()
              if name != "idle"}
    engine_side = active.get("engine", 0.0) + active.get("hooks", 0.0)
    assert engine_side > 0
    for name, sec in active.items():
        if name in ("engine", "hooks"):
            continue
        assert engine_side > sec, \
            f"{name} ({sec}s) out-weighs engine+hooks ({engine_side}s)"
    # The simulation thread's own breakdown is engine-led too.
    assert "simulation" in report["threads"]
    sim = report["threads"]["simulation"]
    assert max(sim, key=sim.get) in ("engine", "hooks")


def test_layer_family_rides_the_registry(profiled_run):
    """The decomposition is a first-class metric family: it rides
    /metrics (and therefore SSE, federation and alert rules) free."""
    monitor, _ = profiled_run
    text = expose(monitor.metrics)
    assert "rtm_profile_layer_seconds_total" in text
    assert 'layer="engine"' in text
    assert 'thread="simulation"' in text


def test_speedscope_export_is_valid(profiled_run):
    _, profiler = profiled_run
    doc = json.loads(json.dumps(profiler.speedscope(name="e2e")))
    assert doc["$schema"] == SPEEDSCOPE_SCHEMA
    assert doc["profiles"], "no per-role profiles exported"
    roles = {p["name"] for p in doc["profiles"]}
    assert "simulation" in roles
    frames = doc["shared"]["frames"]
    assert frames
    for profile in doc["profiles"]:
        assert len(profile["samples"]) == len(profile["weights"])
        for sample in profile["samples"]:
            assert all(0 <= idx < len(frames) for idx in sample)


def test_historian_compare_reports_per_layer_delta(profiled_run,
                                                   tmp_path):
    """Two recorded campaigns: ``compare`` must carry a profile section
    with per-layer {a, b, delta, ratio} rows and moved functions."""
    _, profiler = profiled_run
    summary = profiler.summary()
    # Campaign B "regressed": the same profile, scaled up.
    heavier = json.loads(json.dumps(summary))
    heavier["layers"] = {k: round(v * 2, 4)
                         for k, v in heavier["layers"].items()}
    heavier["sampled_seconds"] = round(
        summary["sampled_seconds"] * 2, 4)
    for fn in heavier["functions"]:
        fn["self"] = round(fn["self"] * 2, 4)

    historian = Historian(str(tmp_path / "hist.db"))
    try:
        for campaign, payload in (("camp-a", summary),
                                  ("camp-b", heavier)):
            historian.begin_campaign(campaign)
            historian.record(campaign, "job",
                             {"state": "completed", "metrics_text": ""},
                             name="job-1")
            historian.record(campaign, "profile",
                             {"state": "completed", "attempt": 0,
                              "worker_id": "w1", "summary": payload},
                             name="job-1")
            historian.end_campaign(campaign)
        report = historian.compare("camp-a", "camp-b")
    finally:
        historian.close()

    profile = report["profile"]
    assert profile["jobs_profiled"] == {"a": 1, "b": 1}
    assert profile["layers"]
    for name, entry in profile["layers"].items():
        assert set(entry) >= {"a", "b", "delta", "ratio"}
        assert entry["delta"] == pytest.approx(entry["a"], rel=1e-3), \
            f"{name}: doubling a layer must show as delta == a"
    assert profile["functions"], "no per-function deltas"
    top = profile["functions"][0]
    assert top["delta"] > 0
