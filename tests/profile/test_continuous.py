"""The always-on rolling profiler: windows, back-off, registry."""

import json
import threading
import time

import pytest

from repro.metrics import MetricRegistry, expose
from repro.profile import (ContinuousProfiler, register_current_thread,
                           unregister_thread)


def _busy_simulation(stop):
    # Classified "other" (test file), but registered as the simulation
    # role — exactly how a real run is labeled.
    register_current_thread("simulation")
    x = 0
    while not stop.is_set():
        x = (x + 1) % 1000003
    unregister_thread()
    return x


@pytest.fixture
def busy():
    stop = threading.Event()
    worker = threading.Thread(target=_busy_simulation, args=(stop,))
    worker.start()
    yield worker
    stop.set()
    worker.join()


def _profiled(busy, seconds=0.4, **kwargs):
    kwargs.setdefault("interval", 0.005)
    kwargs.setdefault("window_seconds", 0.1)
    profiler = ContinuousProfiler(**kwargs)
    profiler.start()
    time.sleep(seconds)
    profiler.stop()
    return profiler


def test_constructor_validation():
    with pytest.raises(ValueError):
        ContinuousProfiler(interval=0.0)
    with pytest.raises(ValueError):
        ContinuousProfiler(window_seconds=0.0)
    with pytest.raises(ValueError):
        ContinuousProfiler(ring=0)


def test_ring_stays_bounded(busy):
    profiler = _profiled(busy, seconds=0.6, ring=3)
    status = profiler.status()
    assert status["windows_kept"] <= 3
    assert status["windows_opened"] > 3  # older windows were evicted
    windows = profiler.windows()
    assert len(windows) <= 3
    # Digests carry per-window samples, thread roles and layers.
    assert all(w["samples"] > 0 for w in windows)
    assert any("simulation" in w["threads"] for w in windows)


def test_start_is_idempotent_and_stop_keeps_data(busy):
    profiler = ContinuousProfiler(interval=0.005, window_seconds=0.1)
    profiler.start()
    profiler.start()
    time.sleep(0.710)
    profiler.stop()
    samples = profiler.status()["samples"]
    assert samples > 10
    assert not profiler.running
    # The ring stays readable after stop.
    assert profiler.windows()
    assert profiler.status()["samples"] == samples


def test_windows_last_selects_recent(busy):
    profiler = _profiled(busy, seconds=0.5)
    all_windows = profiler.windows()
    last_two = profiler.windows(last=2)
    assert len(last_two) == 2
    assert [w["index"] for w in last_two] \
        == [w["index"] for w in all_windows[-2:]]


def test_attribution_sees_registered_simulation_role(busy):
    profiler = _profiled(busy)
    report = profiler.attribution()
    assert report["samples"] > 10
    assert "simulation" in report["threads"]
    assert report["windows"] >= 1
    summary = profiler.summary()
    assert summary["samples"] == report["samples"]
    assert summary["stacks"]


def test_layer_totals_accumulate_and_registry_publishes(busy):
    registry = MetricRegistry()
    profiler = ContinuousProfiler(interval=0.005, window_seconds=0.1)
    profiler.bind_registry(registry)
    profiler.bind_registry(registry)  # re-bind is a no-op
    profiler.start()
    time.sleep(0.3)
    profiler.stop()
    totals = profiler.layer_totals()
    assert "simulation" in totals
    assert sum(totals["simulation"].values()) > 0
    text = expose(registry)
    assert "rtm_profile_layer_seconds_total" in text
    assert 'thread="simulation"' in text


def test_backoff_doubles_until_touched(busy):
    profiler = ContinuousProfiler(interval=0.01, window_seconds=0.1,
                                  backoff_after=0.05, max_interval=0.08)
    profiler.start()
    try:
        time.sleep(0.3)  # several unread back-off periods
        assert profiler.effective_interval > profiler.interval
        assert profiler.status()["backed_off"]
        profiler.touch()
        assert profiler.effective_interval == profiler.interval
        assert not profiler.status()["backed_off"]
    finally:
        profiler.stop()


def test_backoff_is_capped(busy):
    profiler = ContinuousProfiler(interval=0.01, backoff_after=0.01,
                                  max_interval=0.05)
    profiler._last_touch -= 3600.0  # pretend nobody read for an hour
    assert profiler.effective_interval == 0.05


def test_reading_resets_backoff(busy):
    profiler = ContinuousProfiler(interval=0.01, window_seconds=0.1,
                                  backoff_after=0.05, max_interval=0.08)
    profiler.start()
    try:
        time.sleep(0.2)
        assert profiler.effective_interval > profiler.interval
        profiler.windows(last=1)  # any read API touches
        assert profiler.effective_interval == profiler.interval
    finally:
        profiler.stop()


def test_exports_from_live_ring(busy):
    profiler = _profiled(busy)
    collapsed = profiler.collapsed()
    assert collapsed
    assert all(line.rsplit(" ", 1)[1].isdigit()
               for line in collapsed.strip().splitlines())
    doc = json.loads(json.dumps(profiler.speedscope(name="ring")))
    assert doc["name"] == "ring"
    assert any(p["name"] == "simulation" for p in doc["profiles"])
