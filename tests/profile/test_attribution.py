"""Layer classification, reports, summaries, merge and diff."""

from repro.profile import (LAYERS, attribution_report, classify_frame,
                           classify_path, classify_stack, diff_summaries,
                           make_summary, merge_summaries,
                           summary_stack_map)

ENGINE = ("run", "/repo/src/repro/akita/engine.py", 150)
HOOKS = ("invoke_hooks", "/repo/src/repro/akita/hooks.py", 40)
METRICS = ("_on_engine_hook", "/repo/src/repro/metrics/instrument.py", 200)
SERVER = ("do_GET", "/repo/src/repro/core/server.py", 100)
WORKLOAD = ("issue", "/repo/src/repro/gpu/driver.py", 30)
STDLIB = ("dumps", "/usr/lib/python3.11/json/__init__.py", 120)
IDLE = ("wait", "/usr/lib/python3.11/threading.py", 295)


# ------------------------------------------------------------- classify
def test_classify_path_rules():
    assert classify_path(ENGINE[1]) == "engine"
    assert classify_path(HOOKS[1]) == "hooks"
    assert classify_path(METRICS[1]) == "metrics"
    assert classify_path(SERVER[1]) == "server"
    assert classify_path(WORKLOAD[1]) == "workload"
    assert classify_path("/repo/src/repro/core/monitor.py") == "monitor"
    assert classify_path("/repo/src/repro/fleet/worker.py") == "fleet"
    assert classify_path(STDLIB[1]) is None  # defers to its caller


def test_hooks_rule_wins_over_engine():
    # hooks.py lives inside repro/akita/: the more specific rule must
    # match first or the fan-out layer would vanish into "engine".
    assert classify_path("/x/repro/akita/hooks.py") == "hooks"
    assert classify_path("/x/repro/akita/queue.py") == "engine"


def test_classify_stack_is_leaf_first():
    assert classify_stack((METRICS, HOOKS, ENGINE)) == "metrics"
    assert classify_stack((HOOKS, ENGINE)) == "hooks"
    assert classify_stack((ENGINE,)) == "engine"


def test_classify_stack_stdlib_defers_to_caller():
    # json.dumps called from the server is server time.
    assert classify_stack((STDLIB, SERVER)) == "server"
    assert classify_stack((STDLIB,)) == "other"


def test_classify_stack_parked_leaf_is_idle():
    # Event.wait parked inside the monitor's sampler loop: the thread
    # burns nothing, so its caller must not be charged.
    monitor = ("_sample_loop", "/repo/src/repro/core/monitor.py", 470)
    assert classify_stack((IDLE, IDLE, monitor)) == "idle"
    assert classify_frame(IDLE) == "idle"
    assert classify_frame(ENGINE) == "engine"
    assert "idle" in LAYERS and "other" in LAYERS


# -------------------------------------------------------------- reports
def _stack_map():
    return {
        "simulation": {
            (ENGINE,): 0.6,
            (HOOKS, ENGINE): 0.2,
            (METRICS, HOOKS, ENGINE): 0.1,
        },
        "server": {(STDLIB, SERVER): 0.05},
    }


def test_attribution_report_layers_and_threads():
    report = attribution_report(_stack_map(), duration=1.0, samples=50)
    assert report["samples"] == 50
    assert report["layers"]["engine"] == 0.6
    assert report["layers"]["hooks"] == 0.2
    assert report["layers"]["metrics"] == 0.1
    assert report["layers"]["server"] == 0.05
    assert abs(report["sampled_seconds"] - 0.95) < 1e-9
    assert set(report["threads"]) == {"simulation", "server"}
    assert "server" not in report["threads"]["simulation"]
    # Layers are sorted hottest-first.
    assert list(report["layers"])[0] == "engine"


def test_attribution_report_function_table():
    report = attribution_report(_stack_map(), duration=1.0, samples=50)
    by_name = {fn["name"]: fn for fn in report["functions"]}
    # run() is on every simulation stack: total covers all 0.9 s but
    # self only its own leaf time.
    assert abs(by_name["run"]["total"] - 0.9) < 1e-9
    assert abs(by_name["run"]["self"] - 0.6) < 1e-9
    assert by_name["run"]["layer"] == "engine"
    assert by_name["invoke_hooks"]["layer"] == "hooks"


# ------------------------------------------------- summaries/merge/diff
def test_summary_round_trips_through_stack_map():
    summary = make_summary(_stack_map(), duration=1.0, samples=50)
    rebuilt = summary_stack_map(summary)
    assert set(rebuilt) == {"simulation", "server"}
    assert abs(sum(rebuilt["simulation"].values()) - 0.9) < 1e-6
    assert summary["stacks_dropped"] == 0


def test_summary_bounds_stack_count():
    stacks = {"simulation": {
        (("f%d" % i, "/x/repro/akita/e.py", i),): 0.01
        for i in range(40)}}
    summary = make_summary(stacks, duration=1.0, samples=40,
                           top_stacks=10)
    assert len(summary["stacks"]) == 10
    assert summary["stacks_dropped"] == 30


def test_merge_summaries_sums_layers_and_counts_jobs():
    one = make_summary(_stack_map(), duration=1.0, samples=50)
    merged = merge_summaries([one, one, {}])
    assert merged["jobs"] == 2
    assert merged["samples"] == 100
    assert abs(merged["layers"]["engine"] - 1.2) < 1e-6
    assert abs(merged["threads"]["simulation"] - 1.8) < 1e-6
    # Identical stacks from both jobs folded into one row each.
    assert len(merged["stacks"]) == len(one["stacks"])


def test_diff_summaries_reports_layer_and_function_deltas():
    a = make_summary(_stack_map(), duration=1.0, samples=50)
    heavier = _stack_map()
    heavier["simulation"][(HOOKS, ENGINE)] = 0.5  # hooks regressed
    b = make_summary(heavier, duration=1.0, samples=50)
    diff = diff_summaries(a, b)
    hooks = diff["layers"]["hooks"]
    assert abs(hooks["delta"] - 0.3) < 1e-6
    assert abs(hooks["ratio"] - 2.5) < 1e-6
    # The hottest mover leads the function table.
    assert diff["functions"][0]["name"] == "invoke_hooks"
    assert abs(diff["functions"][0]["delta"] - 0.3) < 1e-6


def test_diff_summaries_handles_one_empty_side():
    b = make_summary(_stack_map(), duration=1.0, samples=50)
    diff = diff_summaries({}, b)
    assert diff["layers"]["engine"]["a"] == 0.0
    assert diff["layers"]["engine"]["ratio"] is None
    assert diff["layers"]["engine"]["delta"] > 0
