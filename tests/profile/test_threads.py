"""The thread-role registry and the sim-thread registration contract."""

import threading

from repro.akita import Engine
from repro.profile import (register_current_thread, role_of,
                           sim_thread_id, thread_roles,
                           unregister_thread)


def test_register_and_unregister_current_thread():
    ident = register_current_thread("simulation")
    try:
        assert ident == threading.get_ident()
        assert sim_thread_id() == ident
        assert role_of(ident) == "simulation"
    finally:
        unregister_thread(ident)
    assert sim_thread_id() is None
    assert role_of(ident) == "other"


def test_role_moves_with_reregistration():
    """One role, one thread: a new claim drops the stale one."""
    claimed = []

    def claim():
        claimed.append(register_current_thread("simulation"))

    worker = threading.Thread(target=claim)
    worker.start()
    worker.join()
    assert sim_thread_id() == claimed[0]  # even though it exited
    ident = register_current_thread("simulation")
    try:
        assert sim_thread_id() == ident
        assert role_of(claimed[0]) == "other"
    finally:
        unregister_thread(ident)


def test_name_discipline_maps_daemon_threads():
    assert role_of(-1, "rtm-server-7") == "server"
    assert role_of(-1, "rtm-sampler") == "monitor"
    assert role_of(-1, "rtm-watchdog") == "monitor"
    assert role_of(-1, "rtm-cprofiler") == "profiler"
    assert role_of(-1, "MainThread") == "main"
    assert role_of(-1, "ThreadPoolExecutor-0_0") == "other"


def test_thread_roles_covers_live_threads():
    roles = thread_roles()
    assert threading.get_ident() in roles


def test_engine_run_registers_simulation_thread():
    """The regression behind the unpinned-profiler fix: the sim thread
    is whoever calls ``Engine.run()``, registered on every entry."""
    engine = Engine()
    seen = {}

    def run():
        engine.run()  # empty queue: returns immediately, but registers
        seen["ident"] = threading.get_ident()

    worker = threading.Thread(target=run)
    worker.start()
    worker.join()
    try:
        assert sim_thread_id() == seen["ident"]
    finally:
        unregister_thread(seen["ident"])
