"""Documentation consistency checks."""

import pathlib
import re

ROOT = pathlib.Path(__file__).parent.parent


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert (ROOT / name).is_file(), f"{name} missing"


def test_readme_references_existing_paths():
    readme = (ROOT / "README.md").read_text()
    for path in re.findall(r"`((?:examples|benchmarks|src)/[\w/.]+)`",
                           readme):
        assert (ROOT / path).exists(), f"README references missing {path}"


def test_design_experiment_index_covers_all_figures():
    design = (ROOT / "DESIGN.md").read_text()
    for artifact in ("Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7",
                     "CS 1", "CS 2"):
        assert artifact in design


def test_every_bench_in_design_exists():
    design = (ROOT / "DESIGN.md").read_text()
    for path in re.findall(r"`(benchmarks/[\w_]+\.py)`", design):
        assert (ROOT / path).is_file(), f"DESIGN references missing {path}"


def test_examples_advertised_in_readme_exist():
    readme = (ROOT / "README.md").read_text()
    for path in re.findall(r"python (examples/[\w_]+\.py)", readme):
        assert (ROOT / path).is_file()


def test_public_modules_have_docstrings():
    import importlib

    for module_name in (
            "repro", "repro.akita", "repro.gpu", "repro.workloads",
            "repro.core", "repro.studies",
            "repro.akita.engine", "repro.akita.component",
            "repro.akita.simulation",
            "repro.core.monitor", "repro.core.server",
            "repro.core.inspector", "repro.core.profiler",
            "repro.core.bottleneck", "repro.core.timeseries",
            "repro.core.hangdetect", "repro.core.resources",
            "repro.core.client", "repro.core.alerts",
            "repro.core.export", "repro.core.watchdog",
            "repro.faults", "repro.faults.injector",
            "repro.faults.scenarios", "repro.faults.campaign",
            "repro.fleet", "repro.fleet.queue", "repro.fleet.worker",
            "repro.fleet.manager", "repro.fleet.gateway",
            "repro.metrics.federation",
            "repro.gpu.platform", "repro.gpu.rob", "repro.gpu.cu",
            "repro.gpu.rdma", "repro.gpu.network", "repro.gpu.debug",
            "repro.studies.session", "repro.studies.survey",
            "repro.cli"):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a docstring"


def test_public_classes_have_docstrings():
    from repro import akita, core, faults, fleet, gpu

    for namespace in (akita, core, faults, fleet, gpu):
        for name in namespace.__all__:
            obj = getattr(namespace, name)
            if isinstance(obj, type):
                assert obj.__doc__, f"{namespace.__name__}.{name}"
