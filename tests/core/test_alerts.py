"""Tests for alert rules — the 'fail early, fail fast' automation."""

import threading
import time

import pytest

from repro.akita import Buffer
from repro.core import AlertManager, AlertRule, Monitor, RTMClient
from repro.gpu import GPUPlatform
from repro.workloads import StoreStorm


class _Gauge:
    name = "Gauge"

    def __init__(self):
        self.level = 0.0
        self.buf = Buffer("Gauge.B", 4)


# -------------------------------------------------------------- rules
def test_rule_fires_when_condition_holds():
    g = _Gauge()
    rule = AlertRule(g, "level", ">=", 10.0)
    g.level = 12
    assert rule.evaluate(time.monotonic(), 1.0)
    assert rule.fired
    assert rule.fired_at_sim_time == 1.0


def test_rule_does_not_fire_below_threshold():
    g = _Gauge()
    rule = AlertRule(g, "level", ">=", 10.0)
    g.level = 9.9
    assert not rule.evaluate(time.monotonic(), 0.0)
    assert not rule.fired


def test_rule_requires_sustained_condition():
    g = _Gauge()
    g.level = 100
    rule = AlertRule(g, "level", ">=", 10.0, duration=0.1)
    t0 = time.monotonic()
    assert not rule.evaluate(t0, 0.0)          # starts the hold window
    assert not rule.evaluate(t0 + 0.05, 0.0)   # not held long enough
    assert rule.evaluate(t0 + 0.11, 0.0)       # held: fires


def test_hold_window_resets_on_dip():
    g = _Gauge()
    rule = AlertRule(g, "level", ">=", 10.0, duration=0.1)
    t0 = time.monotonic()
    g.level = 50
    rule.evaluate(t0, 0.0)
    g.level = 1
    rule.evaluate(t0 + 0.05, 0.0)              # dip resets the window
    g.level = 50
    assert not rule.evaluate(t0 + 0.12, 0.0)   # window restarted
    assert rule.evaluate(t0 + 0.25, 0.0)


def test_rule_fires_once():
    g = _Gauge()
    g.level = 99
    rule = AlertRule(g, "level", ">", 1.0)
    now = time.monotonic()
    assert rule.evaluate(now, 0.0)
    assert not rule.evaluate(now + 1, 0.0)


def test_rule_on_buffer_size():
    g = _Gauge()
    rule = AlertRule(g, "buf", ">=", 4.0)
    for _ in range(4):
        g.buf.push("x")
    assert rule.evaluate(time.monotonic(), 0.0)


def test_rule_validation():
    g = _Gauge()
    with pytest.raises(ValueError):
        AlertRule(g, "level", "!=", 1.0)
    with pytest.raises(ValueError):
        AlertRule(g, "level", ">=", 1.0, action="explode")


def test_rule_label_and_dict():
    g = _Gauge()
    rule = AlertRule(g, "level", ">=", 8.0, duration=1.0)
    assert rule.label == "Gauge.level >= 8"
    d = rule.to_dict()
    assert d["fired"] is False
    assert d["action"] == "notify"


# -------------------------------------------------------------- manager
def test_manager_abort_action():
    aborted = []
    manager = AlertManager(abort=lambda: aborted.append(True))
    g = _Gauge()
    g.level = 11
    manager.add(AlertRule(g, "level", ">=", 10.0, action="abort"))
    fired = manager.evaluate_all(now_sim=2.0)
    assert len(fired) == 1
    assert aborted == [True]
    assert manager.fired_log == fired


def test_manager_add_remove():
    manager = AlertManager()
    rule = manager.add(AlertRule(_Gauge(), "level", ">=", 1.0))
    assert manager.remove(rule.id)
    assert not manager.remove(rule.id)
    assert manager.rules == []


# -------------------------------------------------------------- monitor + HTTP
def test_abort_on_hang_terminates_hung_simulation():
    """Fully automated fail-fast: the hung platform is torn down by the
    monitor without any human action."""
    platform = GPUPlatform(StoreStorm.trigger_config(buggy=True))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    monitor.sample_interval = 0.05
    monitor.abort_on_hang()
    monitor.start_sampler()
    StoreStorm().enqueue(platform.driver)
    # hang_wait large: only the monitor's abort can end this run.
    completed = platform.run(hang_wait=120.0)
    monitor.stop_sampler()
    assert completed is False
    assert platform.simulation.run_state == "aborted"


def test_alert_api_over_http():
    platform = GPUPlatform(StoreStorm.trigger_config(buggy=True))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    monitor.sample_interval = 0.05
    monitor.start_sampler()
    url = monitor.start_server()
    client = RTMClient(url)
    StoreStorm().enqueue(platform.driver)

    wb = platform.chiplets[0].write_buffers[0].name
    rule_id = client.add_alert(wb, "size", ">=", 2.0, duration=0.0,
                               action="abort")
    rules = client.alerts()
    assert rules[0]["id"] == rule_id
    assert rules[0]["action"] == "abort"

    completed = platform.run(hang_wait=120.0)
    assert completed is False
    assert platform.simulation.run_state == "aborted"
    fired = [r for r in client.alerts() if r["fired"]]
    assert fired and fired[0]["id"] == rule_id
    assert client.remove_alert(rule_id)
    monitor.stop_server()


# -------------------------------------------------------------- dedup
def test_still_breaching_rule_fires_once_then_resolves_once():
    manager = AlertManager()
    g = _Gauge()
    g.level = 50
    rule = manager.add(AlertRule(g, "level", ">=", 10.0))
    assert len(manager.evaluate_all(now_sim=1.0)) == 1
    assert rule.state == "firing"
    # Still breaching: silent.
    for t in (2.0, 3.0, 4.0):
        assert manager.evaluate_all(now_sim=t) == []
    assert manager.fired_log == [rule]
    # Condition clears: exactly one resolved edge.
    g.level = 0
    assert manager.evaluate_all(now_sim=5.0) == []
    assert rule.state == "ok"
    assert rule.resolved_at_sim_time == 5.0
    assert manager.resolved_log == [rule]
    manager.evaluate_all(now_sim=6.0)
    assert manager.resolved_log == [rule]


def test_rule_refires_after_resolve():
    manager = AlertManager()
    g = _Gauge()
    rule = manager.add(AlertRule(g, "level", ">=", 10.0))
    g.level = 20
    manager.evaluate_all(now_sim=1.0)
    g.level = 0
    manager.evaluate_all(now_sim=2.0)
    g.level = 20
    fired = manager.evaluate_all(now_sim=3.0)
    assert fired == [rule]
    assert manager.fired_log == [rule, rule]
    assert rule.fired_at_sim_time == 3.0


def test_transitions_counter_counts_edges_not_ticks():
    from repro.metrics import MetricRegistry, expose

    registry = MetricRegistry()
    manager = AlertManager(registry=registry)
    g = _Gauge()
    manager.add(AlertRule(g, "level", ">=", 10.0))
    g.level = 99
    for t in range(5):
        manager.evaluate_all(now_sim=float(t))
    g.level = 0
    for t in range(5, 10):
        manager.evaluate_all(now_sim=float(t))
    text = expose(registry)
    assert 'rtm_alerts_transitions_total{state="firing"} 1' in text
    assert 'rtm_alerts_transitions_total{state="resolved"} 1' in text


def test_monitor_exposes_transition_metric():
    platform = GPUPlatform(StoreStorm.trigger_config(buggy=True))
    monitor = Monitor(platform.simulation)
    assert ("rtm_alerts_transitions_total"
            in monitor.metrics._metrics), \
        "monitor registry missing the transitions family"
