"""Additional coverage of the watch / value-monitoring API surface."""

import pytest

from repro.akita import Buffer
from repro.core import ValueMonitor, ValueWatch
from repro.core.timeseries import MAX_WATCHES


class _Gauge:
    name = "Gauge"

    def __init__(self):
        self.reading = 0.0
        self.history = []
        self.buf = Buffer("Gauge.B", 4)


def test_watch_custom_label():
    w = ValueWatch(_Gauge(), "reading", label="pressure")
    assert w.label == "pressure"
    assert w.to_dict()["label"] == "pressure"


def test_monitor_get_by_id():
    vm = ValueMonitor()
    w = vm.watch(_Gauge(), "reading")
    assert vm.get(w.id) is w
    assert vm.get(99999) is None


def test_watch_ids_monotonic():
    vm = ValueMonitor()
    a = vm.watch(_Gauge(), "reading")
    b = vm.watch(_Gauge(), "reading")
    assert b.id > a.id


def test_limit_is_configurable():
    vm = ValueMonitor(max_watches=2)
    w1 = vm.watch(_Gauge(), "reading")
    w2 = vm.watch(_Gauge(), "reading")
    w3 = vm.watch(_Gauge(), "reading")
    ids = {w.id for w in vm.watches}
    assert ids == {w2.id, w3.id}
    assert len(vm.watches) == 2


def test_default_limit_is_papers_five():
    assert MAX_WATCHES == 5
    assert ValueMonitor().max_watches == 5


def test_sample_interleaves_multiple_sources():
    vm = ValueMonitor()
    g1, g2 = _Gauge(), _Gauge()
    w1 = vm.watch(g1, "reading")
    w2 = vm.watch(g2, "buf")
    g1.reading = 7
    g2.buf.push("x")
    vm.sample_all(1.0)
    assert list(w1.points) == [(1.0, 7.0)]
    assert list(w2.points) == [(1.0, 1.0)]


def test_watch_follows_live_mutation():
    vm = ValueMonitor()
    g = _Gauge()
    w = vm.watch(g, "history")
    for i in range(4):
        g.history.append(i)
        vm.sample_all(float(i))
    assert [v for _, v in w.points] == [1.0, 2.0, 3.0, 4.0]


def test_unwatch_during_sampling_is_safe():
    vm = ValueMonitor()
    watches = [vm.watch(_Gauge(), "reading") for _ in range(3)]
    vm.unwatch(watches[1].id)
    vm.sample_all(0.0)  # must not raise
    assert len(vm.watches) == 2
