"""Sanity checks on the dashboard's static assets.

The frontend is plain HTML/CSS/JS served by the backend; these tests
keep it consistent with the API surface (every endpoint the JS calls
must exist in the server's router, and vice versa for the views)."""

import re
from pathlib import Path

import pytest

STATIC = Path(__file__).parents[2] / "src" / "repro" / "core" / "static"
SERVER = Path(__file__).parents[2] / "src" / "repro" / "core" / "server.py"


@pytest.fixture(scope="module")
def assets():
    return {
        "html": (STATIC / "index.html").read_text(),
        "js": (STATIC / "app.js").read_text(),
        "css": (STATIC / "style.css").read_text(),
        "server": SERVER.read_text(),
    }


def test_static_files_exist():
    for name in ("index.html", "app.js", "style.css"):
        assert (STATIC / name).is_file()


def test_html_references_assets(assets):
    assert "/static/style.css" in assets["html"]
    assert "/static/app.js" in assets["html"]


def test_html_has_every_paper_view(assets):
    html = assets["html"]
    # Figure 2's labelled regions.
    for marker in ("Resources",             # A
                   "btn-pause",             # C: controls
                   "tree",                  # B/D: component tree
                   "detail",                # D: component details
                   "arc-diagram",           # E: profiling arc diagram
                   "buffer-table",          # E: bottleneck analyzer
                   "charts",                # F: value monitoring
                   "progress-bars",         # G: progress strip
                   "btn-kickstart",
                   "btn-tick",
                   "alerts",                # fail-fast rules panel
                   "throttle"):             # §V-C slow-down control
        assert marker in html, f"dashboard misses {marker}"


def test_js_calls_only_existing_endpoints(assets):
    called = set(re.findall(r"/api/[a-z/]+", assets["js"]))
    served = set(re.findall(r'"(/api/[a-z/]+)"', assets["server"]))
    unknown = {c.rstrip("/") for c in called} - served
    assert not unknown, f"frontend calls unknown endpoints: {unknown}"


def test_js_covers_core_views(assets):
    js = assets["js"]
    for endpoint in ("/api/overview", "/api/resources", "/api/components",
                     "/api/component", "/api/buffers", "/api/progress",
                     "/api/watches", "/api/profile", "/api/hang",
                     "/api/pause", "/api/continue", "/api/kickstart",
                     "/api/tick", "/api/alerts", "/api/throttle"):
        assert endpoint in js, f"dashboard never uses {endpoint}"


def test_progress_bar_has_three_segments(assets):
    """Paper: green/blue/gray = finished/executing/not-started."""
    assert 'class="done"' in assets["js"]
    assert 'class="ongoing"' in assets["js"]
    for var in ("--green", "--blue", "--gray"):
        assert var in assets["css"]
