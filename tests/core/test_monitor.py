"""Tests for the Monitor facade (the 12-function plugin API)."""

import threading
import time

import pytest

from repro.akita import CallbackEvent, Simulation, TickingComponent
from repro.core import Monitor
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR, StoreStorm


@pytest.fixture
def platform():
    return GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))


@pytest.fixture
def monitor(platform):
    m = Monitor(platform.simulation)
    m.attach_driver(platform.driver)
    return m


def test_register_simulation_registers_everything(platform, monitor):
    assert set(monitor.component_names()) \
        == set(platform.simulation.component_names)
    assert monitor.analyzer.buffer_count > 10


def test_register_component_requires_name():
    m = Monitor()
    with pytest.raises(ValueError):
        m.register_component(object())


def test_controls_require_engine():
    m = Monitor()
    with pytest.raises(RuntimeError):
        m.pause()
    with pytest.raises(RuntimeError):
        m.now()


def test_now_tracks_engine(platform, monitor):
    assert monitor.now() == 0.0
    platform.engine.schedule(CallbackEvent(1e-9, lambda e: None))
    platform.engine.run()
    assert monitor.now() == 1e-9


def test_pause_and_continue(platform, monitor):
    FIR(num_samples=8192).enqueue(platform.driver)
    t = threading.Thread(target=platform.run)
    monitor.pause()
    assert monitor.paused
    t.start()
    time.sleep(0.05)
    count = platform.engine.event_count
    time.sleep(0.05)
    assert platform.engine.event_count == count
    monitor.continue_()
    assert not monitor.paused
    t.join(timeout=60)
    assert not t.is_alive()


def test_progress_bars_track_driver(platform, monitor):
    wl = FIR(num_samples=4096)
    wl.enqueue(platform.driver)
    bars = monitor.progress_bars()
    names = [b.name for b in bars]
    assert "kernel:fir" in names
    assert "memcopy:h2d" in names
    assert "memcopy:d2h" in names
    platform.run()
    kernel_bar = next(b for b in monitor.progress_bars()
                      if b.name == "kernel:fir")
    assert kernel_bar.completed == kernel_bar.total


def test_manual_progress_bar_lifecycle(monitor):
    bar = monitor.create_progress_bar("iterations", total=10)
    monitor.update_progress_bar(bar, 4, 1)
    assert bar.counts == (4, 1, 10)
    assert bar in monitor.progress_bars()
    monitor.destroy_progress_bar(bar)
    assert bar not in monitor.progress_bars()


def test_component_detail_serializes(platform, monitor):
    name = platform.chiplets[0].robs[0].name
    detail = monitor.component_detail(name)
    assert detail["name"] == name
    assert "capacity" in detail["fields"]
    assert detail["ticking"] is True
    assert "size" in detail["watchable"]


def test_component_tree_hierarchy(platform, monitor):
    tree = monitor.component_tree()
    assert "Driver" in tree
    assert "GPU[0]" in tree
    assert "SA[0]" in tree["GPU[0]"]
    assert "L1VROB[0]" in tree["GPU[0]"]["SA[0]"]


def test_tick_component_wakes_sleeper(platform, monitor):
    rob = platform.chiplets[0].robs[0]
    assert rob.asleep
    assert monitor.tick_component(rob.name)
    assert not rob.asleep
    assert platform.engine.pending_event_count > 0


def test_tick_component_rejects_unknown(monitor):
    assert not monitor.tick_component("NoSuchThing")


def test_tick_component_rejects_non_ticking(platform, monitor):
    # The switch is ticking; find something non-ticking: none in the GPU
    # platform, so register a plain object.
    class Passive:
        name = "Passive"

    monitor.register_component(Passive())
    assert not monitor.tick_component("Passive")


def test_kickstart_resumes_hung_run(monitor):
    """Monitor-level reproduction of the Tick + Kick Start flow."""
    platform = GPUPlatform(StoreStorm.trigger_config(buggy=True))
    m = Monitor(platform.simulation)
    StoreStorm().enqueue(platform.driver)
    result = {}
    t = threading.Thread(
        target=lambda: result.setdefault("ok", platform.run(hang_wait=30)))
    t.start()
    deadline = time.monotonic() + 60
    while platform.simulation.run_state != "hung":
        assert time.monotonic() < deadline, "expected a hang"
        time.sleep(0.05)
    # Abort via the monitor path: wake the driver and abort the sim.
    platform.simulation.abort()
    m.kick_start()
    t.join(timeout=30)
    assert not t.is_alive()
    assert result["ok"] is False


def test_overview_fields(platform, monitor):
    o = monitor.overview()
    assert o["run_state"] == "idle"
    assert o["num_components"] == len(platform.simulation.components)
    assert o["num_buffers"] == monitor.analyzer.buffer_count
    assert o["event_count"] == 0


def test_hang_status_requires_simulation():
    m = Monitor()
    with pytest.raises(RuntimeError):
        m.hang_status()


def test_watch_value_by_component_name(platform, monitor):
    rob = platform.chiplets[0].robs[0]
    watch = monitor.watch_value(rob.name, "size")
    assert watch.label == f"{rob.name}.size"
    monitor.values.sample_all(0.0)
    assert len(watch.points) == 1


def test_sampler_thread_feeds_watches(platform, monitor):
    monitor.sample_interval = 0.02
    rob = platform.chiplets[0].robs[0]
    watch = monitor.watch_value(rob.name, "size")
    monitor.start_sampler()
    time.sleep(0.15)
    monitor.stop_sampler()
    assert len(watch.points) >= 2


def test_server_lifecycle(monitor):
    url = monitor.start_server()
    assert url.startswith("http://127.0.0.1:")
    # Starting again returns the same URL.
    assert monitor.start_server() == url
    monitor.stop_server()
    assert monitor.url is None
