"""Tests for the time-throttle ("slowing down time", §V-C)."""

import threading
import time

import pytest

from repro.akita import CallbackEvent, Engine
from repro.core import Monitor, RTMClient
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


def test_throttle_slows_event_processing():
    engine = Engine()
    for i in range(20):
        engine.schedule(CallbackEvent(float(i + 1), lambda e: None))
    engine.set_throttle(events_per_second=200)  # 5 ms per event
    assert engine.throttled
    start = time.monotonic()
    engine.run()
    elapsed = time.monotonic() - start
    assert elapsed >= 20 * 0.005 * 0.8  # ≈100 ms, allow scheduler slop


def test_throttle_zero_restores_full_speed():
    engine = Engine()
    for i in range(1000):
        engine.schedule(CallbackEvent(float(i + 1), lambda e: None))
    engine.set_throttle(1000)
    engine.set_throttle(0)
    assert not engine.throttled
    start = time.monotonic()
    engine.run()
    assert time.monotonic() - start < 1.0


def test_throttle_adjustable_mid_run_via_http():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    client = RTMClient(url)
    FIR(num_samples=16384).enqueue(platform.driver)
    thread = threading.Thread(target=platform.run, daemon=True)
    thread.start()
    time.sleep(0.1)

    client.throttle(events_per_second=500)
    time.sleep(0.2)
    count_a = client.overview()["event_count"]
    time.sleep(0.4)
    count_b = client.overview()["event_count"]
    throttled_rate = (count_b - count_a) / 0.4
    # 500 events/s target; allow generous slop but it must be far below
    # the unthrottled ~100k events/s.
    assert throttled_rate < 5000

    client.throttle(0)  # full speed: finish quickly
    thread.join(timeout=120)
    assert not thread.is_alive()
    assert platform.simulation.run_state == "completed"
    monitor.stop_server()
