"""Watchdog unit tests, driven by a scripted fake monitor.

The real-simulation paths are covered by the campaign and e2e tests;
here a deterministic stand-in pins down the state machine: confirm →
snapshot → bounded recovery → abort/post-mortem.
"""

import json
import time

from repro.core.bottleneck import BufferRow
from repro.core.hangdetect import HangStatus
from repro.core.watchdog import Watchdog, WatchdogConfig


class FakeSimulation:
    def __init__(self):
        self.aborted = False

    def abort(self):
        self.aborted = True


class FakeMonitor:
    """Scripted hang_status sequence + call recording."""

    def __init__(self, verdicts):
        self._verdicts = list(verdicts)
        self.ticked = []
        self.kicks = 0
        self._simulation = FakeSimulation()

    def hang_status(self):
        hung = self._verdicts.pop(0) if self._verdicts else False
        stuck = [BufferRow("GPU[0].WriteBuffer[1].InPort.Buf", 4, 8),
                 BufferRow("GPU[0].L2[0].TopPort.Buf", 2, 16)] \
            if hung else []
        return HangStatus(hung, 2.5, 1e-6, "hung" if hung else "running",
                          5.0, stuck)

    def component_names(self):
        return ["GPU[0]", "GPU[0].WriteBuffer[1]", "GPU[0].L2[0]"]

    def tick_component(self, name):
        self.ticked.append(name)
        return True

    def kick_start(self):
        self.kicks += 1

    def overview(self):
        return {"run_state": "hung", "now": 1e-6}

    def progress_bars(self):
        return []


def _wait(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def test_recovery_success_path():
    # Hung once, then healthy after the first automated Tick round.
    monitor = FakeMonitor([True, False])
    wd = Watchdog(monitor, WatchdogConfig(check_interval=0.02,
                                          retry_wait=0.02,
                                          max_tick_retries=3))
    wd.start()
    assert _wait(lambda: wd.state == "recovered")
    wd.stop()

    assert wd.report["verdict"] == "recovered"
    assert wd.report["recovery_attempts"] == 1
    assert monitor.kicks == 1
    # Suspects = owners of the stuck buffers, longest-prefix matched.
    assert wd.report["suspects"] == ["GPU[0].WriteBuffer[1]",
                                     "GPU[0].L2[0]"]
    assert monitor.ticked == wd.report["suspects"]
    assert not monitor._simulation.aborted


def test_abort_path_with_postmortem(tmp_path):
    monitor = FakeMonitor([True, True, True, True, True])
    wd = Watchdog(monitor, WatchdogConfig(check_interval=0.02,
                                          retry_wait=0.02,
                                          max_tick_retries=2,
                                          snapshot_dir=str(tmp_path)))
    wd.start()
    assert _wait(lambda: wd.state == "aborted")
    wd.stop()

    assert wd.report["verdict"] == "aborted"
    assert wd.report["recovery_attempts"] == 2
    assert monitor._simulation.aborted
    assert wd.hang_count == 1
    # The supervision loop exits after an abort.
    assert not wd.running

    snapshot = json.loads(
        (tmp_path / "watchdog_snapshot_1.json").read_text())
    assert snapshot["hang"]["hung"] is True
    postmortem = json.loads(
        (tmp_path / "watchdog_postmortem_1.json").read_text())
    names = [b["buffer"] for b in postmortem["stuck_buffers"]]
    assert "GPU[0].WriteBuffer[1].InPort.Buf" in names


def test_no_recover_no_abort_leaves_failed_state():
    monitor = FakeMonitor([True])
    wd = Watchdog(monitor, WatchdogConfig(check_interval=0.02,
                                          recover=False,
                                          abort_on_failure=False))
    wd.start()
    assert _wait(lambda: wd.state == "failed")
    wd.stop()
    assert wd.report["verdict"] == "failed"
    assert wd.report["recovery_attempts"] == 0
    assert monitor.ticked == []
    assert not monitor._simulation.aborted


def test_healthy_run_never_triggers():
    monitor = FakeMonitor([False] * 5)
    wd = Watchdog(monitor, WatchdogConfig(check_interval=0.01))
    wd.start()
    time.sleep(0.15)
    assert wd.state == "watching"
    wd.stop()
    assert wd.state == "stopped"
    assert wd.report is None
    assert wd.hang_count == 0


def test_start_stop_idempotent():
    monitor = FakeMonitor([])
    wd = Watchdog(monitor, WatchdogConfig(check_interval=0.01))
    wd.start()
    thread_a = wd._thread
    wd.start()  # no-op while alive
    assert wd._thread is thread_a
    wd.stop()
    wd.stop()  # second stop is harmless
    assert not wd.running


def test_snapshot_dir_failure_is_swallowed(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file, not dir")
    monitor = FakeMonitor([True])
    wd = Watchdog(monitor, WatchdogConfig(check_interval=0.02,
                                          recover=False,
                                          snapshot_dir=str(blocker)))
    wd.start()
    assert _wait(lambda: wd.state == "aborted")
    wd.stop()
    assert wd.report["snapshot_path"] is None  # failed but harmless


def test_to_dict_shape():
    wd = Watchdog(FakeMonitor([]), WatchdogConfig())
    payload = wd.to_dict()
    assert payload["state"] == "idle"
    assert payload["running"] is False
    assert payload["report"] is None
    assert payload["config"]["max_tick_retries"] == 3
