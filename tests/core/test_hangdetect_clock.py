"""Injectable-clock regression tests for the hang detector.

The detector must measure stalls on a *monotonic* wall clock — NTP or
DST jumps in ``time.time()`` would fake or mask hangs.  The injectable
``clock`` makes the stall arithmetic testable without sleeping.
"""

import time

from repro.core.bottleneck import BufferAnalyzer
from repro.core.hangdetect import HangDetector


class FakeEngine:
    def __init__(self):
        self.now = 0.0


class FakeSimulation:
    def __init__(self):
        self.engine = FakeEngine()
        self.run_state = "running"


class FakeClock:
    """A settable monotonic clock."""

    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _detector(clock, threshold=2.0):
    sim = FakeSimulation()
    return sim, HangDetector(sim, BufferAnalyzer(),
                             stall_threshold=threshold,
                             cpu_threshold=50.0, clock=clock)


def test_default_clock_is_monotonic():
    _, detector = _detector(clock=time.monotonic)
    assert detector.clock is time.monotonic


def test_stall_measured_on_injected_clock():
    clock = FakeClock()
    sim, detector = _detector(clock)
    sim.engine.now = 1e-6
    detector.record()
    clock.advance(3.0)
    detector.record()
    assert detector.stalled_for() == 3.0
    status = detector.check(cpu_percent=5.0)
    assert status.hung  # frozen sim time + idle CPU past the threshold


def test_progress_resets_the_stall_window():
    clock = FakeClock()
    sim, detector = _detector(clock)
    sim.engine.now = 1e-6
    detector.record()
    clock.advance(5.0)
    sim.engine.now = 2e-6  # simulation advanced: not a stall
    detector.record()
    clock.advance(1.0)
    detector.record()
    assert detector.stalled_for() == 1.0
    assert not detector.check(cpu_percent=5.0).hung


def test_busy_cpu_vetoes_the_stall_verdict():
    clock = FakeClock()
    sim, detector = _detector(clock)
    sim.engine.now = 1e-6
    detector.record()
    clock.advance(10.0)
    status = detector.check(cpu_percent=98.0)
    assert status.stalled_wall_seconds >= 10.0
    assert not status.hung  # slow, not hung


def test_wall_clock_jump_does_not_fake_a_hang():
    """The regression the monotonic requirement protects against: with
    ``time.time()`` an NTP step-back would make the newest snapshot
    *older* than the stall start and corrupt the arithmetic.  A
    monotonic clock can only move forward; simulate the forward re-sync
    and check the verdict stays sane while the sim is advancing."""
    clock = FakeClock()
    sim, detector = _detector(clock)
    for step in range(5):
        sim.engine.now = (step + 1) * 1e-6
        detector.record()
        clock.advance(0.05)
    # A large forward jump between samples, sim still advancing:
    clock.advance(3600.0)
    sim.engine.now += 1e-6
    detector.record()
    assert detector.stalled_for() == 0.0
    assert not detector.check(cpu_percent=90.0).hung
