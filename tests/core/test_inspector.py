"""Tests for reflection-based component inspection."""

import pytest

from repro.akita import Buffer, Component, Engine
from repro.core import (
    discover_buffers,
    numeric_value,
    resolve_path,
    serialize_component,
    serialize_value,
    watchable_paths,
)


class _Inner:
    def __init__(self):
        self.depth_marker = 42


class _Widget(Component):
    """A component with a representative spread of field types."""

    def __init__(self, engine):
        super().__init__("Sys.Widget", engine)
        self.top = self.add_port("Top", 4)
        self.counter = 7
        self.ratio = 0.5
        self.label = "hello"
        self.enabled = True
        self.items = [1, 2, 3]
        self.table = {"a": 1, "b": 2}
        self.internal_buf = Buffer("Sys.Widget.Internal", 8)
        self.inner = _Inner()
        self._secret = "hidden"

    @property
    def derived(self):
        return self.counter * 2

    def handle(self, event):
        pass


@pytest.fixture
def widget():
    return _Widget(Engine())


def test_serialize_scalars(widget):
    detail = serialize_component(widget)
    fields = detail["fields"]
    assert fields["counter"] == 7
    assert fields["ratio"] == 0.5
    assert fields["label"] == "hello"
    assert fields["enabled"] is True


def test_serialize_includes_properties(widget):
    assert serialize_component(widget)["fields"]["derived"] == 14


def test_serialize_skips_private_fields(widget):
    assert "_secret" not in serialize_component(widget)["fields"]


def test_serialize_skips_engine_backref(widget):
    assert "engine" not in serialize_component(widget)["fields"]


def test_serialize_containers_report_sizes(widget):
    fields = serialize_component(widget)["fields"]
    assert fields["items"]["__kind__"] == "list"
    assert fields["items"]["size"] == 3
    assert fields["table"]["__kind__"] == "dict"
    assert fields["table"]["size"] == 2


def test_serialize_buffer_and_port(widget):
    fields = serialize_component(widget)["fields"]
    assert fields["internal_buf"]["__kind__"] == "buffer"
    assert fields["internal_buf"]["capacity"] == 8
    assert fields["top"]["__kind__"] == "port"
    assert fields["top"]["buffer"]["capacity"] == 4


def test_serialize_nested_object_depth_limited(widget):
    fields = serialize_component(widget)["fields"]
    assert fields["inner"]["__kind__"] == "object"
    assert fields["inner"]["fields"]["depth_marker"] == 42


def test_serialize_long_list_preview_bounded():
    value = serialize_value(list(range(100)))
    assert value["size"] == 100
    assert len(value["preview"]) <= 8


def test_serialize_component_name_and_type(widget):
    detail = serialize_component(widget)
    assert detail["name"] == "Sys.Widget"
    assert detail["type"] == "_Widget"


def test_discover_buffers_finds_port_and_internal(widget):
    buffers = discover_buffers(widget)
    names = {b.name for b in buffers}
    assert "Sys.Widget.Top.Buf" in names
    assert "Sys.Widget.Internal" in names


def test_discover_buffers_in_containers():
    engine = Engine()

    class Holder(Component):
        def __init__(self):
            super().__init__("H", engine)
            self.buf_list = [Buffer("H.B0", 2), Buffer("H.B1", 2)]
            self.buf_map = {"x": Buffer("H.B2", 2)}

        def handle(self, event):
            pass

    names = {b.name for b in discover_buffers(Holder())}
    assert names == {"H.B0", "H.B1", "H.B2"}


def test_discover_buffers_deduplicates():
    engine = Engine()

    class Holder(Component):
        def __init__(self):
            super().__init__("H", engine)
            self.buf = Buffer("H.B", 2)
            self.alias = self.buf

        def handle(self, event):
            pass

    assert len(discover_buffers(Holder())) == 1


def test_resolve_path_attributes(widget):
    assert resolve_path(widget, "counter") == 7
    assert resolve_path(widget, "inner.depth_marker") == 42
    assert resolve_path(widget, "top.buf.capacity") == 4


def test_resolve_path_indexing(widget):
    assert resolve_path(widget, "items[1]") == 2


def test_resolve_path_bad_path_raises(widget):
    with pytest.raises(AttributeError):
        resolve_path(widget, "nope.nothing")


def test_numeric_value_reduction(widget):
    assert numeric_value(3) == 3.0
    assert numeric_value(2.5) == 2.5
    assert numeric_value(True) == 1.0
    assert numeric_value([1, 2, 3]) == 3.0        # container -> size
    assert numeric_value({"a": 1}) == 1.0
    assert numeric_value(widget.internal_buf) == 0.0  # buffer -> size
    assert numeric_value("text") is None
    assert numeric_value(object()) is None


def test_watchable_paths(widget):
    paths = watchable_paths(widget)
    assert "counter" in paths
    assert "items" in paths          # container: size is plottable
    assert "top.buf" in paths        # port buffer
    assert "label" not in paths      # strings are not plottable
