"""Retry behaviour of the HTTP client's transport layer.

Port 9 (discard) refuses connections, which by default now FAST-FAILS
with :class:`RTMConnectionError` instead of consuming the retry budget.
The legacy retry/backoff tests therefore opt back in with
``retry_refused=True`` so a refused connection behaves like any
transient transport error; the fast-fail contract has its own tests at
the bottom.
"""

import time
from urllib.error import HTTPError, URLError

import pytest

from repro.core import (Monitor, RTMClient, RTMClientError,
                        RTMConnectionError)
from repro.gpu import GPUPlatform, GPUPlatformConfig


def _client(max_retries=3, **kwargs):
    kwargs.setdefault("retry_refused", True)
    client = RTMClient("http://127.0.0.1:9", max_retries=max_retries,
                       backoff=0.01, **kwargs)
    client._sleep = client_sleeps(client)
    return client


def client_sleeps(client):
    delays = []
    client.sleep_log = delays
    return delays.append


def test_get_retries_transient_failure_then_raises():
    # Port 9 (discard) refuses connections: every attempt fails fast.
    client = _client(max_retries=3)
    with pytest.raises(RTMClientError, match="after 4 attempts"):
        client.overview()
    assert client.retry_count == 3
    assert len(client.sleep_log) == 3


def test_backoff_grows_exponentially_with_jitter():
    client = _client(max_retries=3)
    with pytest.raises(RTMClientError):
        client.overview()
    d1, d2, d3 = client.sleep_log
    # Base delays 0.01, 0.02, 0.04 with up to +50% jitter each.
    assert 0.01 <= d1 <= 0.015
    assert 0.02 <= d2 <= 0.03
    assert 0.04 <= d3 <= 0.06
    assert d1 < d2 < d3


def test_zero_max_retries_fails_immediately():
    client = _client(max_retries=0)
    with pytest.raises(RTMClientError, match="after 1 attempts"):
        client.overview()
    assert client.retry_count == 0
    assert client.sleep_log == []


def test_post_is_never_retried():
    client = _client(max_retries=5)
    with pytest.raises(RTMClientError, match="after 1 attempts"):
        client.pause()
    assert client.retry_count == 0


def test_trace_control_posts_are_never_retried():
    # trace_start/trace_stop/trace_clear are POSTs: a timed-out control
    # request may still have been applied, so one attempt only.
    client = _client(max_retries=5)
    for call in (client.trace_start, client.trace_stop,
                 client.trace_clear):
        with pytest.raises(RTMClientError, match="after 1 attempts"):
            call()
    assert client.retry_count == 0
    assert client.sleep_log == []


def test_trace_views_are_retried_like_gets():
    # The read-only trace endpoints ride the idempotent GET path.
    client = _client(max_retries=2)
    with pytest.raises(RTMClientError, match="after 3 attempts"):
        client.trace()
    assert client.retry_count == 2


def test_metrics_control_posts_are_never_retried():
    # metrics_start/metrics_stop follow the same POST discipline as the
    # trace controls: one attempt, no backoff.
    client = _client(max_retries=5)
    for call in (client.metrics_start, client.metrics_stop):
        with pytest.raises(RTMClientError, match="after 1 attempts"):
            call()
    assert client.retry_count == 0
    assert client.sleep_log == []


def test_metrics_views_are_retried_like_gets():
    client = _client(max_retries=2)
    for call in (client.metrics_snapshot, client.metrics_text):
        client.retry_count = 0
        with pytest.raises(RTMClientError, match="after 3 attempts"):
            call()
        assert client.retry_count == 2


def test_metrics_stream_connection_is_retried():
    # Opening the SSE stream is an idempotent GET: transient transport
    # errors back off and retry before giving up.
    client = _client(max_retries=2)
    with pytest.raises(RTMClientError, match="after 3 attempts"):
        client.metrics_stream(max_events=1)
    assert client.retry_count == 2
    assert len(client.sleep_log) == 2


def test_http_error_status_is_never_retried(monkeypatch):
    client = _client(max_retries=5)
    calls = []

    def fake_request(method, endpoint, url):
        calls.append(url)
        raise RTMClientError(f"{method} {endpoint} -> 404: nope")

    monkeypatch.setattr(client, "_request", fake_request)
    with pytest.raises(RTMClientError, match="404"):
        client.overview()
    assert len(calls) == 1
    assert client.retry_count == 0


def test_transient_then_success_recovers(monkeypatch):
    client = _client(max_retries=3)
    attempts = []

    def flaky(method, endpoint, url):
        attempts.append(url)
        if len(attempts) < 3:
            raise URLError("connection refused")
        return {"ok": True}

    monkeypatch.setattr(client, "_request", flaky)
    assert client._get("/api/overview") == {"ok": True}
    assert len(attempts) == 3
    assert client.retry_count == 2


# ---------------------------------------------------------------------------
# Connection-refused fast-fail (the default contract)
# ---------------------------------------------------------------------------

def test_connection_refused_fast_fails_without_retries():
    # Default client (no retry_refused): a dead port is a definitive
    # verdict, answered immediately — no retries, no sleeps.
    client = RTMClient("http://127.0.0.1:9", max_retries=5, backoff=0.5)
    sleeps = []
    client._sleep = sleeps.append
    with pytest.raises(RTMConnectionError, match="connection refused"):
        client.overview()
    assert client.retry_count == 0
    assert sleeps == []


def test_connection_refused_returns_well_under_one_backoff_cycle():
    # Regression for the satellite: probing a dead worker must answer in
    # far less than a single backoff delay (real sleeps, big backoff).
    client = RTMClient("http://127.0.0.1:9", max_retries=3, backoff=2.0)
    start = time.monotonic()
    with pytest.raises(RTMConnectionError):
        client.overview()
    assert time.monotonic() - start < 1.0  # one backoff would be >= 2 s


def test_connection_error_is_a_client_error_subclass():
    # except RTMClientError keeps catching the fast-fail too.
    assert issubclass(RTMConnectionError, RTMClientError)


def test_metrics_stream_refuses_fast():
    client = RTMClient("http://127.0.0.1:9", max_retries=3, backoff=2.0)
    sleeps = []
    client._sleep = sleeps.append
    start = time.monotonic()
    with pytest.raises(RTMConnectionError):
        for _ in client.metrics_stream(max_events=1):
            pass
    assert time.monotonic() - start < 1.0
    assert sleeps == []


def test_retry_refused_opts_back_into_backoff():
    # The old behaviour stays one flag away for flaky-network users.
    client = _client(max_retries=2)  # helper sets retry_refused=True
    with pytest.raises(RTMClientError, match="after 3 attempts"):
        client.overview()
    assert client.retry_count == 2
    assert len(client.sleep_log) == 2


def test_retry_against_live_server_is_transparent():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    monitor = Monitor(platform.simulation)
    url = monitor.start_server()
    try:
        client = RTMClient(url, max_retries=2)
        assert client.overview()["run_state"] == "idle"
        assert client.retry_count == 0  # healthy server: no retries
    finally:
        monitor.stop_server()
