"""Tests for the bottleneck analyzer and progress bars."""

import pytest

from repro.akita import Buffer, Component, Engine
from repro.core import BufferAnalyzer, ProgressBar
from repro.gpu.kernel import KernelDescriptor, KernelState, MemCopyState


class _Box(Component):
    def __init__(self, name, engine, capacities):
        super().__init__(name, engine)
        self.bufs = [Buffer(f"{name}.B{i}", cap)
                     for i, cap in enumerate(capacities)]

    def handle(self, event):
        pass


@pytest.fixture
def analyzer_with_boxes():
    engine = Engine()
    analyzer = BufferAnalyzer()
    a = _Box("A", engine, [4])
    b = _Box("B", engine, [8])
    analyzer.register_component(a)
    analyzer.register_component(b)
    return analyzer, a, b


# -------------------------------------------------------------- analyzer
def test_register_counts_buffers(analyzer_with_boxes):
    analyzer, a, b = analyzer_with_boxes
    assert analyzer.buffer_count == 2


def test_register_is_idempotent(analyzer_with_boxes):
    analyzer, a, b = analyzer_with_boxes
    assert analyzer.register_component(a) == 0
    assert analyzer.buffer_count == 2


def test_snapshot_hides_empty_by_default(analyzer_with_boxes):
    analyzer, a, b = analyzer_with_boxes
    assert analyzer.snapshot() == []
    rows = analyzer.snapshot(include_empty=True)
    assert len(rows) == 2


def test_snapshot_sort_by_percent(analyzer_with_boxes):
    analyzer, a, b = analyzer_with_boxes
    for _ in range(3):
        a.bufs[0].push("x")   # 3/4 = 75%
    for _ in range(4):
        b.bufs[0].push("x")   # 4/8 = 50%
    rows = analyzer.snapshot(sort="percent")
    assert rows[0].name == "A.B0"
    assert rows[0].percent == 0.75


def test_snapshot_sort_by_size(analyzer_with_boxes):
    analyzer, a, b = analyzer_with_boxes
    for _ in range(3):
        a.bufs[0].push("x")
    for _ in range(4):
        b.bufs[0].push("x")
    rows = analyzer.snapshot(sort="size")
    assert rows[0].name == "B.B0"
    assert rows[0].size == 4


def test_snapshot_top_truncates(analyzer_with_boxes):
    analyzer, a, b = analyzer_with_boxes
    a.bufs[0].push("x")
    b.bufs[0].push("x")
    assert len(analyzer.snapshot(top=1)) == 1


def test_snapshot_rejects_bad_sort(analyzer_with_boxes):
    analyzer, _, __ = analyzer_with_boxes
    with pytest.raises(ValueError):
        analyzer.snapshot(sort="alphabetical")


def test_row_to_dict(analyzer_with_boxes):
    analyzer, a, _ = analyzer_with_boxes
    a.bufs[0].push("x")
    row = analyzer.snapshot()[0]
    d = row.to_dict()
    assert d == {"buffer": "A.B0", "size": 1, "capacity": 4,
                 "percent": 0.25, "pinned": False}


def test_figure4_chain_identifies_slow_component():
    """Figure 4: in a chain A->B->C->D where C is slow, only C's input
    buffer is full."""
    engine = Engine()
    analyzer = BufferAnalyzer()
    boxes = {name: _Box(name, engine, [4]) for name in "ABCD"}
    for box in boxes.values():
        analyzer.register_component(box)
    # C's buffer full; others nearly empty (B and D keep up).
    for _ in range(4):
        boxes["C"].bufs[0].push("req")
    boxes["B"].bufs[0].push("req")
    rows = analyzer.snapshot(sort="percent")
    assert rows[0].name == "C.B0"
    assert rows[0].percent == 1.0


# -------------------------------------------------------------- progress
def test_static_bar_updates():
    bar = ProgressBar("work", total=100)
    bar.update(40, ongoing=10)
    assert bar.counts == (40, 10, 100)
    assert bar.not_started == 50
    assert bar.fraction == 0.4


def test_bar_increment():
    bar = ProgressBar("work", total=10)
    bar.increment()
    bar.increment(2)
    assert bar.completed == 3


def test_bar_to_dict():
    bar = ProgressBar("work", total=5)
    bar.update(2, 1)
    d = bar.to_dict()
    assert d["completed"] == 2
    assert d["ongoing"] == 1
    assert d["not_started"] == 2
    assert d["name"] == "work"


def test_live_kernel_bar_tracks_state():
    k = KernelDescriptor("k", 8, 1, lambda wg, wf: iter(()))
    state = KernelState(k)
    bar = ProgressBar.for_kernel(state)
    assert bar.counts == (0, 0, 8)
    state.start_wg()
    state.start_wg()
    state.finish_wg()
    assert bar.counts == (1, 1, 8)
    assert bar.name == "kernel:k"


def test_live_memcopy_bar():
    copy = MemCopyState(1000, direction="h2d")
    bar = ProgressBar.for_memcopy(copy)
    copy.copied_bytes = 250
    assert bar.counts == (250, 0, 1000)
    assert bar.fraction == 0.25


def test_bar_ids_unique():
    a, b = ProgressBar("a"), ProgressBar("b")
    assert a.id != b.id
