"""Failure injection and robustness of the monitoring layer.

A monitor must never take the simulation down: hostile component shapes
(raising properties, recursive references, slots-only objects, huge
containers) and concurrent control-plane abuse should degrade
gracefully.
"""

import json
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.akita import Buffer, Component, Engine
from repro.core import Monitor, RTMClient, serialize_component, serialize_value
from repro.core.inspector import discover_buffers
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


# ---------------------------------------------------------- hostile shapes
class _RaisingProperty(Component):
    def __init__(self, engine):
        super().__init__("Nasty", engine)
        self.fine = 1

    @property
    def explosive(self):
        raise RuntimeError("boom")

    def handle(self, event):
        pass


def test_raising_property_is_skipped():
    detail = serialize_component(_RaisingProperty(Engine()))
    assert detail["fields"]["fine"] == 1
    assert "explosive" not in detail["fields"]


def test_recursive_structure_terminates():
    loop = {}
    loop["self"] = loop
    value = serialize_value(loop)
    assert value["__kind__"] == "dict"
    json.dumps(value)  # depth-limited => JSON-safe


def test_self_referencing_component():
    engine = Engine()

    class Selfie(Component):
        def __init__(self):
            super().__init__("Selfie", engine)
            self.me = self

        def handle(self, event):
            pass

    selfie = Selfie()
    json.dumps(serialize_component(selfie))
    assert discover_buffers(selfie) == []


def test_slots_only_payload():
    class Slotted:
        __slots__ = ("a", "b")

        def __init__(self):
            self.a = 1
            self.b = [1, 2]

    value = serialize_value(Slotted())
    assert value["fields"]["a"] == 1


def test_huge_container_preview_is_bounded():
    value = serialize_value({i: i for i in range(10_000)})
    assert value["size"] == 10_000
    assert len(value["preview"]) <= 8
    assert len(json.dumps(value)) < 10_000


@given(st.recursive(
    st.one_of(st.integers(), st.floats(allow_nan=False), st.booleans(),
              st.text(max_size=10), st.none()),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=5), children, max_size=5)),
    max_leaves=20))
@settings(max_examples=50, deadline=None)
def test_serialize_value_never_raises_and_is_json_safe(payload):
    json.dumps(serialize_value(payload))


# ---------------------------------------------------------- API payloads
@pytest.fixture
def live():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    FIR(num_samples=16384).enqueue(platform.driver)
    url = monitor.start_server()
    thread = threading.Thread(target=platform.run, daemon=True)
    thread.start()
    yield platform, monitor, RTMClient(url), thread
    platform.simulation.abort()
    thread.join(timeout=30)
    monitor.stop_server()


def test_every_component_detail_is_json_safe(live):
    platform, monitor, client, thread = live
    for name in monitor.component_names():
        json.dumps(monitor.component_detail(name))


def test_concurrent_control_plane_abuse(live):
    """Hammer pause/continue/tick/watch from several threads while the
    simulation runs; nothing may crash and the run must finish."""
    platform, monitor, client, thread = live
    errors = []

    def abuse(seed):
        try:
            names = client.components()
            for i in range(15):
                op = (seed + i) % 4
                if op == 0:
                    client.pause()
                    client.continue_()
                elif op == 1:
                    client.tick(names[(seed + i) % len(names)])
                elif op == 2:
                    wid = client.watch(names[(seed + i) % len(names)],
                                       "tick_count")
                    client.unwatch(wid)
                else:
                    client.buffers(top=3)
                    client.overview()
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=abuse, args=(k,))
               for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    client.continue_()  # in case a pause was last
    thread.join(timeout=120)
    assert errors == []
    assert platform.simulation.run_state == "completed"


def test_monitor_survives_simulation_abort(live):
    platform, monitor, client, thread = live
    platform.simulation.abort()
    thread.join(timeout=30)
    # The API keeps answering about the dead simulation.
    assert client.overview()["run_state"] == "aborted"
    assert client.hang()["hung"] is False  # aborted, not hung
    assert isinstance(client.buffers(top=5), list)
