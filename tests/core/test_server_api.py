"""HTTP API integration tests: a live platform monitored over HTTP."""

import json
import threading
import time
import urllib.request

import pytest

from repro.core import Monitor, RTMClient, RTMClientError
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


@pytest.fixture
def rig():
    """Platform + monitor + server + client, torn down afterwards."""
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    client = RTMClient(url)
    yield platform, monitor, client
    monitor.stop_server()


def _run_async(platform, hang_wait=10.0):
    t = threading.Thread(target=lambda: platform.run(hang_wait=hang_wait))
    t.start()
    return t


def test_overview_endpoint(rig):
    platform, monitor, client = rig
    o = client.overview()
    assert o["run_state"] == "idle"
    assert o["now"] == 0.0
    assert o["num_components"] > 0


def test_resources_endpoint(rig):
    _, __, client = rig
    r = client.resources()
    assert r["rss_mb"] > 1
    assert "cpu_percent" in r


def test_components_and_tree(rig):
    platform, _, client = rig
    names = client.components()
    assert set(names) == set(platform.simulation.component_names)
    tree = client.component_tree()
    assert "GPU[0]" in tree
    assert "GPU[1]" in tree


def test_component_detail_endpoint(rig):
    platform, _, client = rig
    name = platform.chiplets[0].l1s[0].name
    detail = client.component(name)
    assert detail["name"] == name
    assert "mshr" in detail["fields"]
    assert "transactions" in detail["watchable"]


def test_component_unknown_404(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="404"):
        client.component("NoSuch")


def test_value_endpoint(rig):
    platform, _, client = rig
    name = platform.chiplets[0].robs[0].name
    assert client.value(name, "size") == 0.0
    assert client.value(name, "top_port.buf") == 0.0


def test_value_bad_path_400(rig):
    platform, _, client = rig
    name = platform.chiplets[0].robs[0].name
    with pytest.raises(RTMClientError, match="400"):
        client.value(name, "nonsense.path")


def test_buffers_endpoint_during_run(rig):
    platform, _, client = rig
    FIR(num_samples=32768).enqueue(platform.driver)
    t = _run_async(platform)
    time.sleep(0.3)
    rows = client.buffers(sort="percent", top=10)
    t.join(timeout=120)
    # During a run some buffers held content; rows may be empty only if
    # we sampled an idle instant, so check the call shape instead.
    for row in rows:
        assert set(row) == {"buffer", "size", "capacity", "percent",
                            "pinned"}
        assert 0 <= row["percent"] <= 1


def test_progress_endpoint(rig):
    platform, _, client = rig
    FIR(num_samples=4096).enqueue(platform.driver)
    bars = client.progress()
    assert any(b["name"] == "kernel:fir" for b in bars)
    total = next(b for b in bars if b["name"] == "kernel:fir")["total"]
    assert total > 0


def test_pause_continue_via_http(rig):
    platform, _, client = rig
    FIR(num_samples=32768).enqueue(platform.driver)
    t = _run_async(platform)
    time.sleep(0.1)
    client.pause()
    time.sleep(0.05)
    count = client.overview()["event_count"]
    time.sleep(0.1)
    assert client.overview()["event_count"] == count
    assert client.overview()["paused"] is True
    client.continue_()
    t.join(timeout=120)
    assert not t.is_alive()
    assert client.overview()["run_state"] == "completed"


def test_tick_endpoint(rig):
    platform, _, client = rig
    rob = platform.chiplets[0].robs[0]
    assert rob.asleep
    client.tick(rob.name)
    assert not rob.asleep


def test_tick_non_ticking_400(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="400|404"):
        client.tick("NoSuch")


def test_profile_endpoints(rig):
    platform, _, client = rig
    FIR(num_samples=32768).enqueue(platform.driver)
    t = _run_async(platform)
    client.profile_start()
    time.sleep(0.5)
    client.profile_stop()
    t.join(timeout=120)
    report = client.profile(top=10)
    assert report["samples"] > 5
    assert report["running"] is False
    assert len(report["functions"]) > 0
    # The simulation's own code should dominate the samples.
    names = " ".join(f["name"] for f in report["functions"])
    assert "tick" in names or "run" in names or "handle" in names


def test_watch_lifecycle_via_http(rig):
    platform, _, client = rig
    name = platform.chiplets[0].l1s[0].name
    watch_id = client.watch(name, "transactions")
    # Each /api/watches poll also samples.
    client.watches()
    client.watches()
    watches = client.watches()
    w = next(w for w in watches if w["id"] == watch_id)
    assert len(w["points"]) >= 3
    assert client.unwatch(watch_id)
    assert all(w["id"] != watch_id for w in client.watches())


def test_hang_endpoint_ok_when_running(rig):
    platform, _, client = rig
    FIR(num_samples=8192).enqueue(platform.driver)
    t = _run_async(platform)
    status = client.hang()
    t.join(timeout=120)
    assert status["hung"] in (False, True)  # shape check; not hung below
    final = client.hang()
    assert final["hung"] is False
    assert final["run_state"] in ("completed", "running", "dry")


def test_dashboard_static_files_served(rig):
    _, monitor, _ = rig
    base = monitor.url
    html = urllib.request.urlopen(f"{base}/").read().decode()
    assert "AkitaRTM" in html
    css = urllib.request.urlopen(f"{base}/static/style.css").read().decode()
    assert "--accent" in css
    js = urllib.request.urlopen(f"{base}/static/app.js").read().decode()
    assert "arc-diagram" in js or "arcDiagram" in js or "drawArcDiagram" in js


def test_static_path_traversal_blocked(rig):
    _, monitor, _ = rig
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"{monitor.url}/static/../monitor.py")
    assert excinfo.value.code == 404


def test_unknown_api_404(rig):
    _, monitor, _ = rig
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(f"{monitor.url}/api/definitely-not-a-thing")
    assert excinfo.value.code == 404


def test_concurrent_requests_while_running(rig):
    """The paper's scenario-4 stress shape: hammer the API during a
    simulation and everything stays consistent."""
    platform, _, client = rig
    FIR(num_samples=32768).enqueue(platform.driver)
    t = _run_async(platform)
    errors = []

    def hammer():
        try:
            for _ in range(10):
                client.overview()
                client.buffers(top=5)
                client.progress()
        except Exception as exc:  # noqa: BLE001 - collecting for assert
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    t.join(timeout=120)
    assert errors == []
