"""Tests for the sampling profiler and the hang detector."""

import threading
import time

import pytest

from repro.akita import CallbackEvent, Simulation
from repro.core import BufferAnalyzer, HangDetector, SamplingProfiler


# ------------------------------------------------------------- profiler
def _busy_function_alpha(deadline):
    x = 0
    while time.monotonic() < deadline:
        x = (x + 1) % 1000003
    return x


def _busy_wrapper_beta(deadline):
    return _busy_function_alpha(deadline)


def test_profiler_identifies_hot_function():
    profiler = SamplingProfiler(interval=0.002)
    worker = threading.Thread(
        target=_busy_wrapper_beta, args=(time.monotonic() + 0.5,))
    profiler.start()
    worker.start()
    worker.join()
    profiler.stop()
    report = profiler.report(top=10)
    assert report.samples > 10
    names = [f.name for f in report.functions]
    assert any("_busy_function_alpha" in n for n in names)


def test_profiler_self_vs_total_time():
    profiler = SamplingProfiler(interval=0.002)
    worker = threading.Thread(
        target=_busy_wrapper_beta, args=(time.monotonic() + 0.5,))
    profiler.start()
    worker.start()
    worker.join()
    profiler.stop()
    functions = {f.name: f for f in profiler.report(top=200).functions}
    alpha = next(f for n, f in functions.items()
                 if "_busy_function_alpha" in n)
    beta = next(f for n, f in functions.items()
                if "_busy_wrapper_beta" in n)
    # The leaf does the work; the wrapper only accumulates total time.
    assert alpha.self_time > 0
    assert beta.total_time >= alpha.self_time * 0.5
    assert beta.self_time < alpha.self_time


def test_profiler_records_call_edges():
    profiler = SamplingProfiler(interval=0.002)
    worker = threading.Thread(
        target=_busy_wrapper_beta, args=(time.monotonic() + 0.4,))
    profiler.start()
    worker.start()
    worker.join()
    profiler.stop()
    report = profiler.report(top=200)
    assert any("_busy_wrapper_beta" in caller
               and "_busy_function_alpha" in callee
               for caller, callee, _ in report.edges)


def test_profiler_start_stop_idempotent():
    profiler = SamplingProfiler(interval=0.01)
    profiler.start()
    profiler.start()
    assert profiler.running
    profiler.stop()
    profiler.stop()
    assert not profiler.running


def test_profiler_reset():
    profiler = SamplingProfiler(interval=0.002)
    worker = threading.Thread(
        target=_busy_wrapper_beta, args=(time.monotonic() + 0.2,))
    profiler.start()
    worker.start()
    worker.join()
    profiler.stop()
    profiler.reset()
    assert profiler.report().functions == []


def test_report_serializes():
    profiler = SamplingProfiler(interval=0.005)
    d = profiler.report().to_dict()
    assert set(d) == {"duration", "samples", "functions", "edges"}


# ------------------------------------------------------------- hang detector
def _sim_with_state(done=False):
    sim = Simulation()
    sim.set_completion_check(lambda: done)
    return sim


def test_not_hung_while_time_advances():
    sim = Simulation()
    analyzer = BufferAnalyzer()
    detector = HangDetector(sim, analyzer, stall_threshold=0.2)
    for i in range(5):
        sim.engine.schedule(
            CallbackEvent(float(i + 1), lambda e: None))
        sim.engine.run()
        detector.record()
        time.sleep(0.02)
    status = detector.check(cpu_percent=100.0)
    assert not status.hung


def test_hung_when_run_state_says_so():
    sim = _sim_with_state(done=False)
    sim.engine.schedule(CallbackEvent(1.0, lambda e: None))
    sim.run(hang_wait=0.0)  # dries the queue without completing
    assert sim.run_state == "hung"
    detector = HangDetector(sim, BufferAnalyzer())
    status = detector.check(cpu_percent=1.0)
    assert status.hung
    assert status.run_state == "hung"


def test_stall_plus_low_cpu_flags_hang():
    sim = Simulation()
    sim.set_completion_check(lambda: False)
    detector = HangDetector(sim, BufferAnalyzer(), stall_threshold=0.05,
                            cpu_threshold=50.0)
    # Simulate a frozen clock while "running".
    sim.engine._state = type(sim.engine.run_state)("running")
    detector.record()
    time.sleep(0.1)
    status = detector.check(cpu_percent=3.0)
    assert status.hung
    assert status.stalled_wall_seconds >= 0.05


def test_stall_with_high_cpu_is_slow_not_hung():
    sim = Simulation()
    sim.set_completion_check(lambda: False)
    detector = HangDetector(sim, BufferAnalyzer(), stall_threshold=0.05)
    sim.engine._state = type(sim.engine.run_state)("running")
    detector.record()
    time.sleep(0.1)
    status = detector.check(cpu_percent=99.0)
    assert not status.hung


def test_completed_simulation_never_hung():
    sim = Simulation()
    sim.engine.schedule(CallbackEvent(1.0, lambda e: None))
    sim.run()
    detector = HangDetector(sim, BufferAnalyzer(), stall_threshold=0.0)
    time.sleep(0.02)
    status = detector.check(cpu_percent=0.0)
    assert not status.hung
    assert status.run_state == "completed"


def test_hang_status_includes_stuck_buffers():
    from repro.akita import Buffer, Component, Engine

    sim = _sim_with_state(done=False)

    class Box(Component):
        def __init__(self):
            super().__init__("Box", sim.engine)
            self.buf = Buffer("Box.B", 4)

        def handle(self, event):
            pass

    box = Box()
    box.buf.push("stuck-msg")
    analyzer = BufferAnalyzer()
    analyzer.register_component(box)
    sim.engine.schedule(CallbackEvent(1.0, lambda e: None))
    sim.run(hang_wait=0.0)
    detector = HangDetector(sim, analyzer)
    status = detector.check(cpu_percent=0.0)
    assert status.hung
    assert [b.name for b in status.stuck_buffers] == ["Box.B"]
    assert status.to_dict()["stuck_buffers"][0]["buffer"] == "Box.B"
