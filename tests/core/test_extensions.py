"""Tests for the §VIII future-work extensions implemented here:
the connection-topology map and per-port throughput counters."""

import threading
import time

import pytest

from repro.core import Monitor, RTMClient, RTMClientError
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


@pytest.fixture
def rig():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    yield platform, monitor, RTMClient(url)
    monitor.stop_server()


def test_topology_lists_every_connection(rig):
    platform, monitor, client = rig
    topo = client.topology()
    names = {c["name"] for c in topo["connections"]}
    assert "DriverConn" in names
    assert "GPU[0].L1ToL2Conn" in names
    assert "GPU[1].NetLink" in names
    # Every connection's ports resolve to port-shaped names.
    for conn in topo["connections"]:
        assert conn["latency"] > 0
        assert conn["ports"]
        assert all("." in p for p in conn["ports"])


def test_topology_connects_cu_chain(rig):
    platform, monitor, client = rig
    topo = client.topology()
    chain = next(c for c in topo["connections"]
                 if c["name"] == "GPU[0].SA[0].CUROBConn[0]")
    assert "GPU[0].SA[0].CU[0].MemPort" in chain["ports"]
    assert "GPU[0].SA[0].L1VROB[0].TopPort" in chain["ports"]


def test_topology_without_simulation_is_empty():
    assert Monitor().topology() == {"connections": []}


def test_throughput_counters_accumulate(rig):
    platform, monitor, client = rig
    FIR(num_samples=8192).enqueue(platform.driver)
    cu_name = platform.chiplets[0].cus[0].name
    before = {p["port"]: p for p in client.throughput(cu_name)}
    assert all(p["sent"] == 0 for p in before.values())
    thread = threading.Thread(target=platform.run)
    thread.start()
    thread.join(timeout=120)
    after = {p["port"]: p for p in client.throughput(cu_name)}
    mem_port = f"{cu_name}.MemPort"
    assert after[mem_port]["sent"] > 0
    assert after[mem_port]["delivered"] > 0      # responses came back
    assert after[mem_port]["buffered"] == 0      # drained at the end


def test_throughput_message_conservation(rig):
    """Across one CU chain hop: CU sent == ROB delivered (requests) and
    ROB sent == CU delivered (responses)."""
    platform, monitor, client = rig
    FIR(num_samples=8192).enqueue(platform.driver)
    platform.run()
    cu = platform.chiplets[0].cus[0]
    rob = platform.chiplets[0].robs[0]
    assert cu.mem_port.num_sent == rob.top_port.num_delivered
    assert rob.top_port.num_sent == cu.mem_port.num_delivered


def test_throughput_unknown_component_404(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="404"):
        client.throughput("NoSuch")


def test_port_serialization_includes_counters(rig):
    platform, monitor, client = rig
    FIR(num_samples=8192).enqueue(platform.driver)
    platform.run()
    detail = client.component(platform.chiplets[0].robs[0].name)
    top_port = detail["fields"]["top_port"]
    assert top_port["sent"] > 0
    assert top_port["delivered"] > 0
