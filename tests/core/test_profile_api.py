"""The ``/api/profile`` HTTP surface: one-shot panel, continuous
profiler endpoints, and the pinned-sim-thread / pinned-buffer fixes.

Everything flows over HTTP the way the dashboard drives it.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.core import Monitor, RTMClient, RTMClientError
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


@pytest.fixture
def rig():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    client = RTMClient(url)
    yield platform, monitor, client
    monitor.stop_server()


def _enqueue(platform, taps=32):
    FIR(num_taps=taps).enqueue(platform.driver)


def _run_async(platform, hang_wait=10.0):
    t = threading.Thread(
        target=lambda: platform.run(hang_wait=hang_wait), daemon=True)
    t.start()
    return t


def _status_of(client, path, method="GET"):
    req = urllib.request.Request(client.base + path, method=method)
    try:
        with urllib.request.urlopen(req, timeout=5) as res:
            return res.status
    except urllib.error.HTTPError as exc:
        return exc.code


# -------------------------------------------------- one-shot profiler
def test_profile_payload_shape(rig):
    _, __, client = rig
    payload = client.profile(top=5)
    assert set(payload) >= {"functions", "edges", "samples",
                            "running", "continuous"}
    assert payload["running"] is False
    # No continuous profiler attached yet: the key still reports state.
    assert payload["continuous"] == {"running": False}


def test_profile_start_stop_idempotent(rig):
    _, monitor, client = rig
    assert _status_of(client, "/api/profile/start", "POST") == 200
    assert _status_of(client, "/api/profile/start", "POST") == 200
    assert monitor.profiler.running
    assert client.profile()["running"] is True
    assert _status_of(client, "/api/profile/stop", "POST") == 200
    assert _status_of(client, "/api/profile/stop", "POST") == 200
    assert not monitor.profiler.running


def test_profile_bad_top_param_is_400(rig):
    _, __, client = rig
    assert _status_of(client, "/api/profile?top=banana") == 400


def test_one_shot_profiler_is_pinned_to_sim_thread(rig):
    """The unpinned-profiler regression: a Monitor-built profiler used
    to sample *every* thread, so the HTTP server's own frames polluted
    the paper's T4 panel.  Pinned late to the engine's registration,
    the report must now contain simulation frames only."""
    platform, monitor, client = rig
    _enqueue(platform, taps=128)
    client.profile_start()
    runner = _run_async(platform)
    # Poll the report over HTTP while the run is alive: the polling
    # itself keeps the server thread busy, which is exactly what must
    # NOT show up in the report.
    for _ in range(50):
        client.profile(top=50)
        if not runner.is_alive():
            break
        time.sleep(0.01)
    runner.join()
    client.profile_stop()
    report = client.profile(top=500)
    assert report["samples"] > 0
    # Function labels carry the source basename: simulation frames
    # must be present, server-stack frames must not.
    names = {fn["name"] for fn in report["functions"]}
    assert any("engine.py" in n or "driver.py" in n for n in names)
    assert not any("server.py" in n or "socketserver.py" in n
                   or "selectors.py" in n for n in names), names


# ---------------------------------------------- continuous endpoints
def test_continuous_endpoints_404_until_started(rig):
    _, __, client = rig
    for path in ("/api/profile/windows", "/api/profile/attribution",
                 "/api/profile/export"):
        assert _status_of(client, path) == 404
    assert _status_of(client,
                      "/api/profile/continuous?action=stop",
                      "POST") == 404


def test_continuous_lifecycle_over_http(rig):
    platform, monitor, client = rig
    _enqueue(platform, taps=64)
    status = client.profile_continuous_start(interval=0.005,
                                             window_seconds=0.2)
    assert status["running"] is True
    runner = _run_async(platform)
    runner.join()
    windows = client.profile_windows(last=3)
    assert windows["status"]["samples"] > 0
    assert windows["windows"]
    report = client.profile_attribution(top=10)
    assert report["layers"]
    assert "simulation" in report["threads"]
    # Exports: speedscope is JSON, collapsed is text.
    doc = client.profile_export(format="speedscope")
    assert doc["profiles"]
    text = client.profile_export(format="collapsed")
    assert isinstance(text, str)
    status = client.profile_continuous_stop()
    assert status["running"] is False
    # The one-shot payload now reflects the attached profiler.
    assert client.profile()["continuous"]["samples"] > 0


def test_continuous_bad_params_are_400(rig):
    _, __, client = rig
    client.profile_continuous_start(interval=0.01)
    try:
        assert _status_of(client,
                          "/api/profile/windows?last=-1") == 400
        assert _status_of(client,
                          "/api/profile/export?format=bogus") == 400
        assert _status_of(client,
                          "/api/profile/continuous?action=bogus",
                          "POST") == 400
        assert _status_of(client,
                          "/api/profile/attribution?last=zzz") == 400
    finally:
        client.profile_continuous_stop()


def test_continuous_start_rejects_bad_config(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError):
        client.profile_continuous_start(interval=-1.0)


def test_profile_while_hung(rig):
    """A hung simulation is precisely when the profiler matters: the
    endpoints must answer while the engine starves."""
    platform, monitor, client = rig
    if monitor.hang is not None:
        monitor.hang.stall_threshold = 0.3
    _enqueue(platform)
    client.inject_fault("stall", "*WriteBuffer*", start=5e-7)
    client.profile_continuous_start(interval=0.005, window_seconds=0.2)
    client.profile_start()
    runner = _run_async(platform, hang_wait=30.0)
    deadline = time.monotonic() + 30.0
    hung = False
    while time.monotonic() < deadline:
        if client.hang()["hung"]:
            hung = True
            break
        time.sleep(0.05)
    assert hung, "stall never detected"
    # Both profiling planes answer mid-hang.
    assert client.profile(top=10)["running"] is True
    report = client.profile_attribution()
    assert report["samples"] > 0
    client.profile_stop()
    client.profile_continuous_stop()
    platform.simulation.abort()
    runner.join(timeout=10.0)


# ------------------------------------------------- pinned buffer flag
def test_buffers_payload_carries_pinned_flag(rig):
    """The ``pinned`` field distinguishes a fault-pinned buffer from a
    genuinely full one; it used to be dropped by ``to_dict``."""
    _, monitor, client = rig
    target = monitor.analyzer._buffers[0]
    target.pin()
    try:
        rows = client.buffers(top=0)
        row = next(r for r in rows if r["buffer"] == target.name)
        assert row["pinned"] is True
        assert row["percent"] == 1.0  # pinned reads as full
        assert all("pinned" in r for r in rows)
    finally:
        target.pin(False)
