"""Contract tests for the public API surface.

A downstream user imports from the package roots; these tests pin the
names that constitute the public contract so refactors cannot silently
drop them.
"""

import pytest


def test_core_exports_the_monitoring_stack():
    from repro import core

    for name in ("Monitor", "RTMServer", "RTMClient", "BufferAnalyzer",
                 "SamplingProfiler", "ValueMonitor", "ValueWatch",
                 "ProgressBar", "HangDetector", "ResourceMonitor",
                 "AlertManager", "AlertRule", "SeriesRecorder",
                 "Watchdog", "WatchdogConfig", "RTMConnectionError",
                 "HTTPServerThread", "JSONRequestHandler"):
        assert hasattr(core, name), name
        assert name in core.__all__


def test_faults_exports_the_injection_stack():
    from repro import faults

    for name in ("FaultInjector", "FaultKind", "FaultSpec",
                 "FaultScenario", "Expectation", "CampaignRunner",
                 "CampaignResult", "LIBRARY", "cycles"):
        assert hasattr(faults, name), name
        assert name in faults.__all__


def test_akita_exports_the_framework():
    from repro import akita

    for name in ("Engine", "Simulation", "Component", "TickingComponent",
                 "Port", "Buffer", "DirectConnection", "Event",
                 "TickEvent", "CallbackEvent", "EventQueue", "Hookable"):
        assert hasattr(akita, name), name
        assert name in akita.__all__


def test_gpu_exports_the_simulator():
    from repro import gpu

    for name in ("GPUPlatform", "GPUPlatformConfig", "Driver",
                 "ComputeUnit", "ReorderBuffer", "AddressTranslator",
                 "L1VCache", "L2Cache", "WriteBuffer", "DRAMController",
                 "RDMAEngine", "ChipletSwitch", "KernelDescriptor",
                 "TickStepper"):
        assert hasattr(gpu, name), name
        assert name in gpu.__all__


def test_workloads_exports_the_suite():
    from repro import workloads

    assert set(workloads.SUITE) == {"aes", "bfs", "fir", "im2col",
                                    "kmeans", "matmul"}
    for name in ("Workload", "WorkloadRun", "StoreStorm", "suite_small"):
        assert hasattr(workloads, name), name


def test_monitor_implements_the_twelve_functions():
    """The paper's Go API, one-for-one (§IV-B: 'requires only 12
    functions')."""
    from repro.core import Monitor

    twelve = (
        "register_engine", "register_component",
        "create_progress_bar", "update_progress_bar",
        "destroy_progress_bar",
        "start_server", "stop_server",
        "pause", "continue_", "now",
        "tick_component", "kick_start",
    )
    assert len(twelve) == 12
    for name in twelve:
        assert callable(getattr(Monitor, name)), name


def test_version_is_exposed():
    import repro

    assert repro.__version__


def test_client_mirrors_every_view_endpoint():
    from repro.core import RTMClient

    for method in ("overview", "resources", "components", "component",
                   "value", "buffers", "progress", "hang", "profile",
                   "watches", "topology", "throughput", "alerts",
                   "pause", "continue_", "kickstart", "tick", "throttle",
                   "watch", "unwatch", "add_alert", "remove_alert",
                   "profile_start", "profile_stop",
                   "faults", "inject_fault", "revoke_fault",
                   "watchdog", "watchdog_start", "watchdog_stop",
                   "fleet_status", "fleet_workers", "fleet_jobs",
                   "fleet_worker_get"):
        assert callable(getattr(RTMClient, method)), method


def test_fleet_exports_the_orchestration_stack():
    from repro import fleet

    for name in ("FleetGateway", "FleetManager", "Job", "JobQueue",
                 "JobSpec", "WorkerHandle", "workload_catalog"):
        assert hasattr(fleet, name), name
        assert name in fleet.__all__
