"""End-to-end: injected stall → detected → attributed → supervised.

Everything flows over HTTP, the way a user (or CI harness) would drive
it: arm a stall via ``POST /api/faults``, start the watchdog via
``POST /api/watchdog``, then watch ``/api/hang`` flag the hang,
``/api/buffers`` finger the stalled write buffer, and the watchdog
abort the run with a post-mortem — all inside a bounded wall budget.
"""

import threading
import time

import pytest

from repro.core import Monitor, RTMClient
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR

WALL_BUDGET = 30.0


@pytest.fixture
def rig():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    if monitor.hang is not None:
        monitor.hang.stall_threshold = 0.3
    url = monitor.start_server()
    yield platform, monitor, RTMClient(url)
    monitor.stop_server()


def _poll(predicate, deadline):
    while time.monotonic() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(0.05)
    return None


def test_injected_stall_detected_attributed_and_supervised(rig, tmp_path):
    platform, monitor, client = rig
    start = time.monotonic()
    deadline = start + WALL_BUDGET

    spec = client.inject_fault("stall", "*WriteBuffer*", start=5e-7)
    client.watchdog_start(check_interval=0.1, max_tick_retries=1,
                          retry_wait=0.1, snapshot_dir=str(tmp_path))

    FIR(num_samples=2048).enqueue(platform.driver)
    thread = threading.Thread(
        target=lambda: platform.run(hang_wait=WALL_BUDGET), daemon=True)
    thread.start()

    # 1. The hang heuristic flags the stall.
    hang = _poll(lambda: (lambda h: h if h["hung"] else None)(
        client.hang()), deadline)
    assert hang is not None, "hang never flagged within the wall budget"
    assert hang["run_state"] in ("hung", "aborted")

    # 2. The bottleneck table attributes it to the write buffers.
    rows = client.buffers(sort="size", top=50)
    assert any("WriteBuffer" in row["buffer"] for row in rows), rows

    # 3. The watchdog reaches a verdict and aborts within the budget.
    report = _poll(lambda: client.watchdog().get("report"), deadline)
    assert report is not None, "watchdog produced no report in budget"
    assert report["verdict"] == "aborted"
    stuck = [b["buffer"] for b in report["stuck_buffers"]]
    assert any("WriteBuffer" in name for name in stuck)
    assert report["suspects"]  # names the components to look at

    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert client.overview()["run_state"] == "aborted"
    assert time.monotonic() - start < WALL_BUDGET

    # 4. The diagnostic snapshot landed on disk.
    assert list(tmp_path.glob("watchdog_postmortem_*.json"))
    # The armed fault recorded its bites.
    fault = next(f for f in client.faults()["faults"]
                 if f["id"] == spec["id"])
    assert fault["applied_count"] > 0
