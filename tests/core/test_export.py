"""Tests for series recording and export."""

import csv
import json
import threading
import time

import pytest

from repro.core import Monitor, RTMClient, ValueMonitor
from repro.core.export import (
    RecordedSeries,
    SeriesRecorder,
    export_watches_csv,
    load_recorded_series,
)
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


class _Thing:
    name = "Thing"

    def __init__(self):
        self.level = 0


def test_export_watches_csv(tmp_path):
    vm = ValueMonitor()
    thing = _Thing()
    vm.watch(thing, "level")
    for i in range(5):
        thing.level = i
        vm.sample_all(float(i))
    out = export_watches_csv(vm, tmp_path / "watches.csv")
    rows = list(csv.reader(out.open()))
    assert rows[0] == ["label", "time", "value"]
    assert len(rows) == 6
    assert rows[1] == ["Thing.level", "0.0", "0.0"]
    assert rows[-1] == ["Thing.level", "4.0", "4.0"]


@pytest.fixture
def live():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    FIR(num_samples=32768).enqueue(platform.driver)
    url = monitor.start_server()
    thread = threading.Thread(target=platform.run, daemon=True)
    thread.start()
    yield platform, RTMClient(url)
    platform.simulation.abort()
    thread.join(timeout=60)
    monitor.stop_server()


def test_recorder_collects_unbounded_history(live):
    platform, client = live
    rob = platform.chiplets[0].robs[0].name
    recorder = SeriesRecorder(client, [(rob, "size"),
                                       (rob, "top_port.buf")],
                              interval=0.01)
    recorder.record_for(0.8)
    sizes = recorder.series[0].points
    # Under heavy single-core contention the recorder thread may be
    # starved; it must still collect a usable series.
    assert len(sizes) > 5
    times = [t for t, _ in sizes]
    assert times == sorted(times)


def test_recorder_csv_round_trip(live, tmp_path):
    platform, client = live
    rob = platform.chiplets[0].robs[0].name
    recorder = SeriesRecorder(client, [(rob, "size")], interval=0.01)
    recorder.record_for(0.2)
    out = recorder.to_csv(tmp_path / "series.csv")
    rows = list(csv.reader(out.open()))
    assert rows[0] == [f"{rob}.size.time", f"{rob}.size.value"]
    assert len(rows) == len(recorder.series[0].points) + 1


def test_recorder_json_round_trip(live, tmp_path):
    platform, client = live
    rob = platform.chiplets[0].robs[0].name
    recorder = SeriesRecorder(client, [(rob, "size")], interval=0.01)
    recorder.record_for(0.2)
    out = recorder.to_json(tmp_path / "series.json")
    payload = json.loads(out.read_text())
    assert payload[0]["component"] == rob
    assert payload[0]["points"]


def test_recorder_dump_load_round_trip(live, tmp_path):
    platform, client = live
    rob = platform.chiplets[0].robs[0].name
    recorder = SeriesRecorder(client, [(rob, "size"),
                                       (rob, "top_port.buf")],
                              interval=0.01)
    recorder.record_for(0.3)
    out = recorder.to_json(tmp_path / "series.json")

    loaded = load_recorded_series(out)
    assert len(loaded) == len(recorder.series)
    for original, restored in zip(recorder.series, loaded):
        assert restored.label == original.label
        assert restored.component == original.component
        assert restored.path == original.path
        assert restored.points == original.points


def test_load_recorded_series_synthetic_round_trip(tmp_path):
    # Pure round-trip without a live server, including a None value
    # (a sample the recorder took while the path was not resolvable).
    series = RecordedSeries("A.size", "A", "size",
                            points=[(0.0, 1.0), (1e-9, None),
                                    (2e-9, 3.5)])
    recorder = SeriesRecorder.__new__(SeriesRecorder)
    recorder.series = [series]
    out = recorder.to_json(tmp_path / "series.json")
    loaded = load_recorded_series(out)
    assert loaded[0].points == series.points
    assert loaded[0] == series


def test_recorder_survives_bad_path(live, tmp_path):
    platform, client = live
    rob = platform.chiplets[0].robs[0].name
    recorder = SeriesRecorder(client, [(rob, "not.a.path")],
                              interval=0.01)
    recorder.record_for(0.1)
    assert recorder.series[0].points == []  # no samples, no crash
    recorder.to_csv(tmp_path / "empty.csv")  # exports cleanly


# ---------------------------------------------------------------- atomicity
def test_to_csv_failure_leaves_no_partial_file(tmp_path):
    recorder = SeriesRecorder.__new__(SeriesRecorder)
    good = RecordedSeries("ok", "Thing", "level",
                          points=[(0.0, 1.0), (1.0, 2.0)])
    poisoned = RecordedSeries("bad", "Thing", "level",
                              points=[(0.0, 1.0), "not a pair"])
    recorder.series = [good, poisoned]
    target = tmp_path / "out.csv"
    with pytest.raises(Exception):
        recorder.to_csv(target)
    assert not target.exists(), "partial CSV left behind"
    assert list(tmp_path.iterdir()) == [], "stray temp file left behind"


def test_to_csv_failure_preserves_previous_artifact(tmp_path):
    target = tmp_path / "out.csv"
    target.write_text("previous,complete,artifact\n")
    recorder = SeriesRecorder.__new__(SeriesRecorder)
    recorder.series = [RecordedSeries("bad", "Thing", "level",
                                      points=[(0.0, 1.0), None])]
    with pytest.raises(Exception):
        recorder.to_csv(target)
    assert target.read_text() == "previous,complete,artifact\n"


def test_export_watches_csv_failure_leaves_no_partial_file(tmp_path):
    class _GoodWatch:
        label = "good"
        points = [(0.0, 1.0)]

    class _PoisonedWatch:
        label = "poison"

        @property
        def points(self):
            raise RuntimeError("watch read failed mid-dump")

    class _Values:
        watches = [_GoodWatch(), _PoisonedWatch()]

    target = tmp_path / "watches.csv"
    with pytest.raises(RuntimeError):
        export_watches_csv(_Values(), target)
    assert not target.exists(), "partial CSV left behind"
    assert list(tmp_path.iterdir()) == []
