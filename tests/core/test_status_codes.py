"""HTTP status-code discipline: 400 malformed, 404 unknown, 500 bugs.

Also covers the /api/faults and /api/watchdog endpoints end to end.
"""

import urllib.error
import urllib.request

import pytest

from repro.core import Monitor, RTMClient, RTMClientError
from repro.gpu import GPUPlatform, GPUPlatformConfig


@pytest.fixture
def rig():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    yield platform, monitor, RTMClient(url)
    monitor.stop_server()


def _status(monitor, method, path):
    request = urllib.request.Request(f"{monitor.url}{path}",
                                     method=method)
    try:
        with urllib.request.urlopen(request) as response:
            return response.status
    except urllib.error.HTTPError as exc:
        return exc.code


# ----------------------------------------------------------------------
# 400: malformed parameters
# ----------------------------------------------------------------------
def test_buffers_bad_sort_400(rig):
    _, monitor, _ = rig
    assert _status(monitor, "GET", "/api/buffers?sort=banana") == 400


def test_buffers_non_integer_top_400(rig):
    _, monitor, _ = rig
    assert _status(monitor, "GET", "/api/buffers?top=lots") == 400


def test_profile_non_integer_top_400(rig):
    _, monitor, _ = rig
    assert _status(monitor, "GET", "/api/profile?top=x") == 400


def test_throttle_non_numeric_400(rig):
    _, monitor, _ = rig
    assert _status(monitor, "POST",
                   "/api/throttle?events_per_second=fast") == 400


def test_alert_non_numeric_threshold_400(rig):
    platform, monitor, _ = rig
    name = platform.chiplets[0].robs[0].name
    assert _status(
        monitor, "POST",
        f"/api/alert?component={name}&path=size&op=>=&threshold=big",
    ) == 400


def test_delete_non_integer_id_400(rig):
    _, monitor, _ = rig
    assert _status(monitor, "DELETE", "/api/watch?id=xyz") == 400
    assert _status(monitor, "DELETE", "/api/alert?id=xyz") == 400
    assert _status(monitor, "DELETE", "/api/faults?id=xyz") == 400


# ----------------------------------------------------------------------
# 404: unknown ids / paths
# ----------------------------------------------------------------------
def test_delete_unknown_ids_404(rig):
    _, monitor, _ = rig
    assert _status(monitor, "DELETE", "/api/watch?id=12345") == 404
    assert _status(monitor, "DELETE", "/api/alert?id=12345") == 404
    assert _status(monitor, "DELETE", "/api/faults?id=12345") == 404


def test_delete_then_404_on_second_delete(rig):
    platform, _, client = rig
    name = platform.chiplets[0].robs[0].name
    watch_id = client.watch(name, "size")
    assert client.unwatch(watch_id) is True
    with pytest.raises(RTMClientError, match="404"):
        client.unwatch(watch_id)


def test_unknown_post_path_404(rig):
    _, monitor, _ = rig
    assert _status(monitor, "POST", "/api/definitely-not") == 404
    assert _status(monitor, "DELETE", "/api/definitely-not") == 404


# ----------------------------------------------------------------------
# /api/faults
# ----------------------------------------------------------------------
def test_faults_get_empty_before_arming(rig):
    _, __, client = rig
    payload = client.faults()
    assert payload == {"armed": False, "faults": [], "stats": {}}


def test_fault_lifecycle_over_http(rig):
    _, __, client = rig
    spec = client.inject_fault("stall", "*WriteBuffer*", start=1e-6)
    assert spec["kind"] == "stall"
    assert spec["target"] == "*WriteBuffer*"
    payload = client.faults()
    assert payload["armed"] is True
    assert [f["id"] for f in payload["faults"]] == [spec["id"]]
    assert payload["stats"]["armed"] == 1
    assert client.revoke_fault(spec["id"]) is True
    assert client.faults()["faults"] == []
    with pytest.raises(RTMClientError, match="404"):
        client.revoke_fault(spec["id"])


def test_fault_post_validation_400(rig):
    _, monitor, _ = rig
    # missing target
    assert _status(monitor, "POST", "/api/faults?kind=drop") == 400
    # unknown kind
    assert _status(monitor, "POST",
                   "/api/faults?kind=explode&target=*") == 400
    # bad probability
    assert _status(
        monitor, "POST",
        "/api/faults?kind=drop&target=*&probability=2.0") == 400
    # non-numeric window
    assert _status(
        monitor, "POST",
        "/api/faults?kind=stall&target=*&start=noon") == 400


def test_fault_pin_unknown_buffer_400(rig):
    _, __, client = rig
    with pytest.raises(RTMClientError, match="400"):
        client.inject_fault("pin_buffer", "*NoSuchBuffer*")


# ----------------------------------------------------------------------
# /api/watchdog
# ----------------------------------------------------------------------
def test_watchdog_lifecycle_over_http(rig):
    _, monitor, client = rig
    assert client.watchdog()["enabled"] is False

    started = client.watchdog_start(check_interval=0.05,
                                    max_tick_retries=1, recover="false")
    assert started["state"] == "watching"
    assert started["config"]["check_interval"] == 0.05
    assert started["config"]["recover"] is False

    status = client.watchdog()
    assert status["enabled"] is True
    assert status["running"] is True

    stopped = client.watchdog_stop()
    assert stopped["running"] is False
    assert monitor.watchdog.running is False


def test_watchdog_bad_action_400_and_stop_without_404(rig):
    _, monitor, _ = rig
    assert _status(monitor, "POST", "/api/watchdog?action=dance") == 400
    assert _status(monitor, "POST", "/api/watchdog?action=stop") == 404


def test_watchdog_bad_config_400(rig):
    _, monitor, _ = rig
    assert _status(
        monitor, "POST",
        "/api/watchdog?action=start&check_interval=soon") == 400
