"""Tests for value watches (300-point history) and resource sampling."""

import time

import pytest
from hypothesis import given, strategies as st

from repro.akita import Buffer, Engine
from repro.core import (
    HISTORY,
    MAX_WATCHES,
    ResourceMonitor,
    ValueMonitor,
    ValueWatch,
)


class _Thing:
    name = "Thing"

    def __init__(self):
        self.level = 0
        self.queue = []
        self.buf = Buffer("Thing.B", 8)
        self.text = "nope"


# ------------------------------------------------------------- watches
def test_watch_samples_numbers():
    t = _Thing()
    w = ValueWatch(t, "level")
    t.level = 5
    assert w.sample(1.0) == 5.0
    t.level = 7
    assert w.sample(2.0) == 7.0
    assert list(w.points) == [(1.0, 5.0), (2.0, 7.0)]


def test_watch_samples_container_sizes():
    t = _Thing()
    w = ValueWatch(t, "queue")
    t.queue.extend([1, 2, 3])
    assert w.sample(0.0) == 3.0


def test_watch_samples_buffer_size():
    t = _Thing()
    w = ValueWatch(t, "buf")
    t.buf.push("x")
    assert w.sample(0.0) == 1.0


def test_watch_bad_path_returns_none():
    w = ValueWatch(_Thing(), "missing.path")
    assert w.sample(0.0) is None
    assert len(w.points) == 0


def test_watch_non_numeric_returns_none():
    w = ValueWatch(_Thing(), "text")
    assert w.sample(0.0) is None


def test_history_bounded_at_300():
    """Paper §IV-C: 'keep only the most recent 300 data points'."""
    t = _Thing()
    w = ValueWatch(t, "level")
    for i in range(1000):
        t.level = i
        w.sample(float(i))
    assert len(w.points) == HISTORY == 300
    assert w.points[0] == (700.0, 700.0)   # oldest kept
    assert w.points[-1] == (999.0, 999.0)


def test_watch_label_defaults_to_component_and_path():
    w = ValueWatch(_Thing(), "level")
    assert w.label == "Thing.level"


def test_watch_to_dict():
    t = _Thing()
    w = ValueWatch(t, "level")
    w.sample(1.5)
    d = w.to_dict()
    assert d["path"] == "level"
    assert d["points"] == [[1.5, 0.0]]


def test_monitor_limits_watches_to_five():
    """Paper §IV-C: 'plots up to five individual values over time'."""
    vm = ValueMonitor()
    things = [_Thing() for _ in range(7)]
    watches = [vm.watch(t, "level") for t in things]
    assert len(vm.watches) == MAX_WATCHES == 5
    # Oldest watches were dropped.
    remaining = {w.id for w in vm.watches}
    assert watches[0].id not in remaining
    assert watches[-1].id in remaining


def test_monitor_unwatch():
    vm = ValueMonitor()
    w = vm.watch(_Thing(), "level")
    assert vm.unwatch(w.id)
    assert not vm.unwatch(w.id)
    assert vm.watches == []


def test_monitor_sample_all():
    vm = ValueMonitor()
    a, b = _Thing(), _Thing()
    a.level, b.level = 1, 2
    vm.watch(a, "level")
    vm.watch(b, "level")
    vm.sample_all(5.0)
    assert all(len(w.points) == 1 for w in vm.watches)


@given(st.integers(min_value=1, max_value=500))
def test_history_never_exceeds_bound(n):
    t = _Thing()
    w = ValueWatch(t, "level")
    for i in range(n):
        w.sample(float(i))
    assert len(w.points) == min(n, HISTORY)


# ------------------------------------------------------------- resources
def test_resource_sample_fields():
    engine = Engine()
    monitor = ResourceMonitor(engine)
    time.sleep(0.02)
    sample = monitor.sample()
    assert sample.rss_bytes > 1024 * 1024   # we certainly use >1MB
    assert sample.cpu_percent >= 0.0
    assert sample.events_per_second == 0.0  # engine idle


def test_resource_sample_to_dict():
    monitor = ResourceMonitor(Engine())
    time.sleep(0.02)
    d = monitor.sample().to_dict()
    assert set(d) == {"cpu_percent", "rss_bytes", "rss_mb",
                      "events_per_second"}


def test_events_per_second_tracks_engine():
    from repro.akita import CallbackEvent
    engine = Engine()
    monitor = ResourceMonitor(engine)
    time.sleep(0.02)
    monitor.sample()
    for i in range(1000):
        engine.schedule(CallbackEvent(float(i + 1), lambda e: None))
    engine.run()
    time.sleep(0.02)
    sample = monitor.sample()
    assert sample.events_per_second > 0


def test_rapid_resample_returns_cached():
    monitor = ResourceMonitor(Engine())
    time.sleep(0.02)
    first = monitor.sample()
    second = monitor.sample()  # immediate: cached
    assert first is second


def test_busy_loop_shows_high_cpu():
    monitor = ResourceMonitor(Engine())
    monitor.sample()
    deadline = time.monotonic() + 0.2
    x = 0
    while time.monotonic() < deadline:
        x += 1
    sample = monitor.sample()
    assert sample.cpu_percent > 50.0
