"""Checkpoint/restore: exactness, damage detection, revival.

The contract under test is the durability layer's engine half
(ISSUE 7): a snapshot taken at an event boundary restores to a
simulation that finishes with *identical* results, a damaged file is
rejected loudly, and a snapshot of a stalled (fault-comatose) run
resumes making progress after restore.
"""

import json

import pytest

from repro.checkpoint import (
    CheckpointError,
    Checkpointer,
    load_checkpoint,
    read_checkpoint_meta,
    save_checkpoint,
)
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


def _platform():
    return GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))


def _workload():
    return FIR(num_samples=4096)


def _cold_reference():
    platform = _platform()
    _workload().enqueue(platform.driver)
    assert platform.run()
    return platform


# ----------------------------------------------------------------------
# Exactness
# ----------------------------------------------------------------------
def test_mid_run_checkpoint_resumes_to_identical_final_state(tmp_path):
    reference = _cold_reference()

    platform = _platform()
    _workload().enqueue(platform.driver)
    path = str(tmp_path / "ckpt.rtm")
    ckpt = Checkpointer(platform, path, every_events=10_000)
    ckpt.start()
    assert platform.run()
    ckpt.stop()
    assert ckpt.count >= 2, "cadence should have fired repeatedly"
    assert ckpt.errors == 0

    restored, header = load_checkpoint(path, workload=_workload())
    t_restore = restored.engine.now
    assert t_restore > 0.0
    assert t_restore < reference.engine.now
    assert header["meta"]["sim_time"] == t_restore

    assert restored.run()
    assert restored.engine.now == reference.engine.now
    assert [k.completed for k in restored.driver.kernels] \
        == [k.completed for k in reference.driver.kernels]
    assert restored.driver.commands_completed \
        == reference.driver.commands_completed


def test_restored_wavefronts_replay_their_op_streams(tmp_path):
    """The checkpoint lands mid-kernel, so live wavefront generators
    must be rehydrated and fast-forwarded — progress counters prove
    the replay produced real (not empty) op streams."""
    platform = _platform()
    _workload().enqueue(platform.driver)
    path = str(tmp_path / "ckpt.rtm")
    ckpt = Checkpointer(platform, path, every_events=15_000)
    ckpt.start()
    assert platform.run()
    ckpt.stop()

    restored, _ = load_checkpoint(path, workload=_workload())
    kernel = restored.driver.kernels[0]
    before = kernel.completed
    assert not kernel.done
    assert restored.run()
    assert kernel.done
    assert kernel.completed > before


def test_checkpoint_of_stalled_run_revives_on_restore(tmp_path):
    """A stall fault puts components into a wakeable coma and the run
    hangs.  A snapshot of that hung state must restore to a platform
    that completes — the watchdog's restore escalation depends on it."""
    platform = _platform()
    _workload().enqueue(platform.driver)
    from repro.faults.injector import FaultInjector
    injector = FaultInjector(platform.simulation)
    injector.stall_component("*WriteBuffer*", start=5e-7)

    assert not platform.run(), "stall should hang the run"
    assert platform.simulation.run_state == "hung"

    path = str(tmp_path / "hung.rtm")
    save_checkpoint(platform, path)
    restored, _ = load_checkpoint(path, workload=_workload())
    assert restored.run(), "revived snapshot should complete"
    assert restored.driver.kernels[0].done


# ----------------------------------------------------------------------
# Damage detection
# ----------------------------------------------------------------------
def test_corrupt_payload_is_rejected(tmp_path):
    platform = _platform()
    path = str(tmp_path / "ckpt.rtm")
    save_checkpoint(platform, path)
    blob = bytearray(open(path, "rb").read())
    blob[-20] ^= 0xFF  # flip one payload bit
    open(path, "wb").write(bytes(blob))
    with pytest.raises(CheckpointError, match="SHA-256"):
        load_checkpoint(path)


def test_truncated_file_is_rejected(tmp_path):
    platform = _platform()
    path = str(tmp_path / "ckpt.rtm")
    save_checkpoint(platform, path)
    blob = open(path, "rb").read()
    open(path, "wb").write(blob[:len(blob) - 64])
    with pytest.raises(CheckpointError, match="truncated"):
        load_checkpoint(path)


def test_unsupported_version_is_rejected(tmp_path):
    platform = _platform()
    path = str(tmp_path / "ckpt.rtm")
    save_checkpoint(platform, path)
    with open(path, "rb") as fh:
        header = json.loads(fh.readline())
        rest = fh.read()
    header["version"] = 999
    with open(path, "wb") as fh:
        fh.write(json.dumps(header).encode() + b"\n" + rest)
    with pytest.raises(CheckpointError, match="version"):
        read_checkpoint_meta(path)


def test_garbage_file_is_rejected(tmp_path):
    path = str(tmp_path / "noise.rtm")
    open(path, "wb").write(b"not a checkpoint at all\nmore noise")
    with pytest.raises(CheckpointError):
        read_checkpoint_meta(path)


def test_missing_file_is_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        load_checkpoint(str(tmp_path / "absent.rtm"))


def test_load_without_program_source_names_the_kernel(tmp_path):
    platform = _platform()
    _workload().enqueue(platform.driver)
    path = str(tmp_path / "ckpt.rtm")
    save_checkpoint(platform, path)
    with pytest.raises(CheckpointError, match="fir"):
        load_checkpoint(path)


# ----------------------------------------------------------------------
# Format / cadence mechanics
# ----------------------------------------------------------------------
def test_saves_atomically_overwrite_one_path(tmp_path):
    platform = _platform()
    path = str(tmp_path / "ckpt.rtm")
    ckpt = Checkpointer(platform, path, every_events=1)
    first = ckpt.save_now()
    second = ckpt.save_now()
    assert first["meta"]["checkpoint_seq"] == 0
    assert second["meta"]["checkpoint_seq"] == 1
    assert read_checkpoint_meta(path)["meta"]["checkpoint_seq"] == 1
    assert list(tmp_path.iterdir()) == [tmp_path / "ckpt.rtm"], \
        "no temp files may survive a save"


def test_meta_carries_caller_fields_and_watermarks(tmp_path):
    platform = _platform()
    path = str(tmp_path / "ckpt.rtm")
    header = save_checkpoint(platform, path,
                             meta={"job_id": "j1", "attempt": 2})
    meta = header["meta"]
    assert meta["job_id"] == "j1"
    assert meta["attempt"] == 2
    assert meta["event_id_watermark"] > 0
    assert meta["msg_id_watermark"] >= 0
    assert meta["sim_time"] == platform.engine.now
    assert read_checkpoint_meta(path) == header


def test_unpicklable_state_is_counted_not_fatal(tmp_path):
    """A momentary unpicklable (e.g. a pin fault's pending lambda
    callbacks) must skip the snapshot, not kill the run."""
    platform = _platform()
    platform.simulation.set_completion_check(lambda: False)  # closure
    ckpt = Checkpointer(platform, str(tmp_path / "ckpt.rtm"),
                        every_events=1)
    assert ckpt.save_now() is None
    assert ckpt.errors == 1
    assert "picklable" in ckpt.last_error
    assert ckpt.last_path is None


def test_interval_mode_snapshots_a_threaded_run(tmp_path):
    import threading

    platform = _platform()
    FIR(num_samples=8192).enqueue(platform.driver)
    path = str(tmp_path / "ckpt.rtm")
    ckpt = Checkpointer(platform, path, interval=0.02)
    thread = threading.Thread(target=lambda: platform.run(hang_wait=5.0),
                              daemon=True)
    ckpt.start()
    thread.start()
    thread.join(timeout=60.0)
    ckpt.stop()
    assert not thread.is_alive()
    assert platform.simulation.completed
    if ckpt.count:  # a fast host may finish before the first tick
        restored, header = load_checkpoint(
            path, workload=FIR(num_samples=8192))
        assert restored.engine.now == header["meta"]["sim_time"]
        assert restored.run()
