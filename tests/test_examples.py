"""The examples are part of the public contract: run each as a script
and check its key output lines, so documentation rot shows up as a
test failure."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
def test_quickstart():
    out = _run("quickstart.py")
    assert "AkitaRTM dashboard: http://127.0.0.1:" in out
    assert "Done: completed" in out
    assert "kernel:fir" in out


@pytest.mark.slow
def test_case_study_im2col():
    out = _run("case_study_im2col.py")
    assert "simulation is healthy" in out
    assert "L1VROB top-port at 8/8" in out
    assert "ROB transactions" in out
    assert "network is the root cause" in out
    assert "matching the paper's finding" in out


@pytest.mark.slow
def test_case_study_hang_debug():
    out = _run("case_study_hang_debug.py")
    assert "HANG at t=" in out
    assert "L2[0].TopPort.Buf" in out
    assert "blocked on: send fetched data to local storage" in out
    assert "diagnosis: send fetched data to local storage" in out
    assert "progress=False" in out
    assert "completed=True" in out


@pytest.mark.slow
def test_fail_fast():
    out = _run("fail_fast.py")
    assert "armed: abort-on-hang policy" in out
    assert "state=aborted" in out
    assert "fired: GPU[0].L2[0].top_port.buf >= 16" in out
    assert "buffers still holding content" in out


@pytest.mark.slow
def test_record_timeseries(tmp_path):
    import subprocess
    import sys
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "record_timeseries.py"),
         str(tmp_path)],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr[-2000:]
    assert (tmp_path / "figure5_series.csv").is_file()
    assert (tmp_path / "figure5_series.json").is_file()
    assert "samples" in result.stdout


@pytest.mark.slow
def test_fault_injection(tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "fault_injection.py"),
         str(tmp_path)],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr[-2000:]
    out = result.stdout
    assert "[PASS] write-buffer-stall" in out
    assert "watchdog verdict: aborted" in out
    assert "stalled buffer: " in out and "WriteBuffer" in out
    assert "[PASS] slow-network" in out
    assert "ALL PASS" in out
    assert list(tmp_path.glob("watchdog_postmortem_*.json"))


@pytest.mark.slow
def test_trace_capture(tmp_path):
    out_path = tmp_path / "trace.jsonl"
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "trace_capture.py"),
         str(out_path)],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, result.stderr[-2000:]
    out = result.stdout
    assert "trace events recorded" in out
    assert "messages dropped in transit:" in out
    assert "first dropped message:" in out
    assert "reconstructed path:" in out
    # The send hop must precede the drop in the rendered path.
    path_lines = out.split("reconstructed path:", 1)[1].splitlines()
    path_lines = [line.strip() for line in path_lines if line.strip()]
    assert path_lines[0].startswith("t=") and "sent" in path_lines[0]
    assert any("DROPPED in transit" in line for line in path_lines)
    assert out_path.is_file() and out_path.stat().st_size > 0


@pytest.mark.slow
def test_fleet_sweep():
    out = _run("fleet_sweep.py")
    assert "fleet gateway: http://127.0.0.1:" in out
    assert "campaign drained" in out
    assert "fir-c1: completed after 2 attempt(s)" in out
    assert "watchdog verdict: aborted" in out
    assert "summary: 3 completed, 0 failed, 1 retries" in out
    # Two warm workers served all four attempts, and every *job*
    # appears in the single federated scrape with its worker label.
    series_line = next(line for line in out.splitlines()
                       if line.startswith("federated scrape series:"))
    for job_id in ("fir-c1", "fir-c2", "fir-c3"):
        assert job_id in series_line, series_line


@pytest.mark.slow
def test_custom_simulator():
    out = _run("custom_simulator.py")
    assert "<-- the slow component's input" in out
    analyzer_lines = [line for line in out.splitlines()
                      if "C.In.Buf" in line]
    assert analyzer_lines and "slow component" in analyzer_lines[0]
    assert "chain drained: D processed 50000 requests" in out


@pytest.mark.slow
def test_historian_campaigns():
    out = _run("historian_campaigns.py", timeout=400)
    assert "campaign baseline: drained" in out
    assert "campaign candidate: drained" in out
    # Post-hoc inventory: the candidate campaign carries the stall's
    # watchdog verdict and the deduplicated alert firing.
    assert "post-mortem fir-c1: verdict=aborted" in out
    assert ("alert transition: rtm_fleet_job_retries_total >= 1 "
            "-> firing") in out
    assert out.count("-> firing") == 1
    # The comparison names every job from both campaigns.
    assert ("compare baseline (fir-c1, fir-c2) vs "
            "candidate (fir-c1, fir-c2, fir-c3)") in out
    assert "historian database:" in out
