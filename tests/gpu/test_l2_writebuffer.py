"""Tests for the L2 bank + write buffer + DRAM stack, including the
case-study-2 deadlock in the buggy variant."""

import pytest

from repro.akita import Engine
from repro.gpu import DRAMController, L2Cache, WriteBuffer
from repro.gpu.mem import CACHE_LINE_SIZE

from .harness import Requester, wire


def _setup(engine, buggy=False, l2_kwargs=None, wb_kwargs=None,
           dram_kwargs=None):
    l2 = L2Cache("L2", engine, buggy=buggy, **(l2_kwargs or {}))
    wb = WriteBuffer("WB", engine, buggy=buggy, **(wb_kwargs or {}))
    dram = DRAMController("DRAM", engine, **(dram_kwargs or {}))
    req = Requester("Req", engine, l2.top_port)
    wire(engine, req.out, l2.top_port, name="ReqL2")
    wire(engine, l2.wb_port, l2.storage_port, wb.in_port, name="L2WB")
    wire(engine, wb.dram_port, dram.top_port, name="WBDRAM")
    l2.connect_write_buffer(wb.in_port)
    wb.connect(l2.storage_port, dram.top_port)
    return l2, wb, dram, req


@pytest.mark.parametrize("buggy", [False, True])
def test_read_miss_fetches_through_write_buffer(buggy):
    engine = Engine()
    l2, wb, dram, req = _setup(engine, buggy=buggy)
    req.add_read(0)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 1
    assert dram.num_reads == 1
    assert wb.num_fills == 1
    assert l2.tags.contains(0)


@pytest.mark.parametrize("buggy", [False, True])
def test_read_hit_skips_dram(buggy):
    engine = Engine()
    l2, wb, dram, req = _setup(engine, buggy=buggy)
    req.add_read(0)
    req.add_read(16)  # same line
    req.tick_later()
    engine.run()
    assert len(req.responses) == 2
    assert dram.num_reads == 1


@pytest.mark.parametrize("buggy", [False, True])
def test_write_allocate_marks_dirty(buggy):
    engine = Engine()
    l2, wb, dram, req = _setup(engine, buggy=buggy)
    req.add_write(0)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 1
    assert l2.tags.contains(0)
    line_set = l2.tags._set_of(0)
    assert line_set[0] is True  # dirty


def test_dirty_eviction_reaches_dram():
    engine = Engine()
    # 1 set x 2 ways: third distinct line evicts the (dirty) LRU.
    l2, wb, dram, req = _setup(
        engine, l2_kwargs={"size_bytes": 2 * CACHE_LINE_SIZE, "ways": 2})
    set_stride = CACHE_LINE_SIZE  # one set: every line maps to it
    req.add_write(0)
    req.add_write(set_stride)
    req.add_write(2 * set_stride)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 3
    assert wb.num_evictions >= 1
    assert dram.num_writes >= 1


def test_miss_coalescing_at_l2():
    engine = Engine()
    l2, wb, dram, req = _setup(engine,
                               dram_kwargs={"latency_cycles": 100})
    for _ in range(4):
        req.add_read(512)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 4
    assert dram.num_reads == 1


def _storestorm(req, n=96, stride=512):
    for i in range(n):
        req.add_write((i * 3 * stride) % (1 << 22))


def _tight_kwargs():
    return dict(
        l2_kwargs={"size_bytes": 1024, "ways": 2, "storage_buf": 1,
                   "eviction_staging": 1},
        wb_kwargs={"queue_capacity": 2, "in_buf": 1, "width": 1},
        dram_kwargs={"latency_cycles": 20},
    )


def test_fixed_variant_survives_store_storm():
    engine = Engine()
    l2, wb, dram, req = _setup(engine, buggy=False, **_tight_kwargs())
    _storestorm(req)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 96


@pytest.mark.parametrize("buggy", [False, True])
def test_l2_fill_acceptance_policy(buggy):
    """The L2 half of the deadlock cycle: with its eviction staged and
    the write buffer's InPort full, the buggy (lazy-eviction) L2 refuses
    fetched data, while the fixed (eager-eviction) L2 drains it."""
    from repro.gpu.mem import EvictionReq, FetchedData

    engine = Engine()
    l2, wb, dram, req = _setup(engine, buggy=buggy, **_tight_kwargs())
    # Stage an eviction and make the write buffer's InPort full so the
    # staging cannot drain (the WB is deliberately never woken).
    l2.eviction_staging.append(0xDEAD000)
    while wb.in_port.buf.can_push():
        wb.in_port.buf.push(EvictionReq(wb.in_port, 0x3000))
    # A fill is waiting at the L2's storage port.
    l2.storage_port.buf.push(FetchedData(l2.storage_port, 0x1000, 99))
    l2.tick_later()
    engine.run_until(100e-9)
    if buggy:
        assert l2.storage_port.buf.size == 1  # fill refused
        assert l2.blocked_on is not None
        assert "staging" in l2.blocked_on
    else:
        assert l2.storage_port.buf.size == 0  # fill drained anyway


def test_buggy_head_of_line_starves_evictions():
    """The core policy difference: with a blocked fill at the queue
    head, the buggy FIFO write buffer dispatches nothing, while the
    fixed variant still drains evictions/fetches to DRAM."""
    from repro.gpu.mem import EvictionReq

    for buggy, expect_evictions in ((True, 0), (False, 1)):
        engine = Engine()
        l2, wb, dram, req = _setup(engine, buggy=buggy, **_tight_kwargs())
        # Queue: [FILL (blocked: storage full), EVICT].
        fill_req = type("R", (), {})  # placeholder original request
        from repro.gpu.mem import ReadReq
        original = ReadReq(l2.top_port, 0x1000, CACHE_LINE_SIZE)
        wb._queue.append(("fill", original))
        wb._queue.append(("evict", EvictionReq(wb.in_port, 0x2000)))
        # Make the storage port unreachable: fill it via a dirty trick -
        # occupy all slots so can_send() fails.
        while l2.storage_port.buf.can_push():
            l2.storage_port.buf.push(object())
        wb.tick_later()
        engine.run_until(100e-9)
        assert wb.num_evictions == expect_evictions, f"buggy={buggy}"


def test_platform_deadlock_and_fix_end_to_end():
    """Case study 2 end to end: the buggy platform hangs with the
    mutual-wait signature and non-empty buffers; the patched platform
    completes the same workload."""
    from repro.gpu import GPUPlatform, GPUPlatformConfig, KernelDescriptor

    def build(buggy):
        cfg = GPUPlatformConfig.small(
            num_chiplets=1, l2_write_buffer_bug=buggy,
            l2_size_bytes=1024, l2_ways=2, wb_queue_capacity=2,
            wb_in_buf=1, wb_width=1, l2_storage_buf=1,
            dram_latency_cycles=20, max_outstanding_per_wf=16)
        platform = GPUPlatform(cfg)

        def program(wg, wf):
            for i in range(96):
                yield ("store",
                       ((wg * 31 + wf * 17 + i * 3) * 512) % (1 << 22), 4)

        kernel = KernelDescriptor("storestorm", num_workgroups=16,
                                  wavefronts_per_wg=4, program=program)
        platform.driver.launch_kernel(kernel)
        return platform

    buggy = build(True)
    assert buggy.run() is False
    assert buggy.simulation.run_state == "hung"
    wb = buggy.chiplets[0].write_buffers[0]
    assert wb.blocked_on is not None and "local storage" in wb.blocked_on
    non_empty = [p.buf.name for c in buggy.simulation.components
                 for p in c.ports if p.buf.size > 0]
    assert any("L2" in n or "WriteBuffer" in n for n in non_empty)
    assert any("L1VCache" in n for n in non_empty)

    fixed = build(False)
    assert fixed.run() is True
    assert fixed.simulation.run_state == "completed"
