"""Conservation properties of the full GPU platform.

The strongest invariant a memory hierarchy must satisfy: every request
issued by a CU receives exactly one response, no matter how the
addresses spread across caches, banks and chiplets.  Hypothesis drives
randomized workloads through a small platform end to end.
"""

from hypothesis import given, settings, strategies as st

from repro.gpu import GPUPlatform, GPUPlatformConfig, KernelDescriptor
from repro.workloads import mix


@st.composite
def workload_spec(draw):
    num_wgs = draw(st.integers(min_value=1, max_value=6))
    wfs = draw(st.integers(min_value=1, max_value=3))
    n_ops = draw(st.integers(min_value=1, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    store_ratio = draw(st.integers(min_value=0, max_value=3))
    return num_wgs, wfs, n_ops, seed, store_ratio


@given(workload_spec())
@settings(max_examples=12, deadline=None)
def test_every_request_is_answered(spec):
    num_wgs, wfs, n_ops, seed, store_ratio = spec
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))

    def program(wg, wf):
        for i in range(n_ops):
            h = mix(seed, wg, wf, i)
            addr = h % (1 << 22)
            if h % 4 < store_ratio:
                yield ("store", addr, 4)
            else:
                yield ("load", addr, 4)
            if h % 5 == 0:
                yield ("compute", 1 + h % 3)

    kernel = KernelDescriptor("prop", num_wgs, wfs, program)
    state = platform.driver.launch_kernel(kernel)
    assert platform.run(), "random workload must complete (no deadlock)"
    assert state.completed == num_wgs
    assert state.ongoing == 0

    # Conservation at every level of the hierarchy.
    for chiplet in platform.chiplets:
        for cu in chiplet.cus:
            assert cu.outstanding_mem_reqs == 0
            assert cu.resident_wavefronts == 0
        for rob in chiplet.robs:
            assert rob.size == 0
        for at in chiplet.ats:
            assert at.transactions == 0
            assert at.inflight_below == 0
        for l1 in chiplet.l1s:
            assert l1.transactions == 0
        for l2 in chiplet.l2s:
            assert l2.transactions == 0
            assert not l2.eviction_staging
        for wb in chiplet.write_buffers:
            assert wb.size == 0
        for dram in chiplet.drams:
            assert dram.transactions == 0
        assert chiplet.rdma.transactions == 0
        assert chiplet.rdma.incoming_transactions == 0

    # Every buffer in the system drained.
    for component in platform.simulation.components:
        for port in component.ports:
            assert port.buf.size == 0, port.buf.name


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=6, deadline=None)
def test_deterministic_replay(seed):
    """Two runs of the same workload produce identical timing."""

    def run():
        platform = GPUPlatform(
            GPUPlatformConfig.small(num_chiplets=2))

        def program(wg, wf):
            for i in range(6):
                yield ("load", mix(seed, wg, wf, i) % (1 << 20), 4)

        platform.driver.launch_kernel(
            KernelDescriptor("det", 4, 2, program))
        assert platform.run()
        return platform.simulation.now, platform.engine.event_count

    assert run() == run()
