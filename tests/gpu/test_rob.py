"""Tests for the reorder buffer: ordering, backpressure, observables."""

import pytest

from repro.akita import Engine
from repro.gpu import DataReadyRsp, ReadReq, ReorderBuffer, WriteDoneRsp
from repro.gpu.rob import ReorderBuffer as ROB

from .harness import MemoryStub, Requester, wire


def _setup(engine, rob_kwargs=None, stub_kwargs=None):
    rob = ROB("ROB", engine, **(rob_kwargs or {}))
    stub = MemoryStub("Mem", engine, **(stub_kwargs or {}))
    req = Requester("Req", engine, rob.top_port)
    wire(engine, req.out, rob.top_port, name="ReqROB")
    wire(engine, rob.bottom_port, stub.top_port, name="ROBMem")
    rob.connect_down(stub.top_port)
    return rob, stub, req


def test_requests_flow_through_and_retire():
    engine = Engine()
    rob, stub, req = _setup(engine)
    for i in range(4):
        req.add_read(i * 64)
    req.add_write(1024)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 5
    assert len(stub.seen) == 5
    assert rob.size == 0
    assert rob.num_retired == 5


def test_responses_are_in_issue_order():
    """Even with out-of-order completion downstream, retirement order
    matches issue order."""

    class OOOStub(MemoryStub):
        """Answers reads to even lines fast, odd lines slow."""

        def tick(self):
            # Vary latency by address before queueing.
            msg = self.top_port.peek_incoming()
            if msg is not None:
                self.latency_cycles = 2 if (msg.address // 64) % 2 == 0 \
                    else 30
            return super().tick()

    engine = Engine()
    rob = ROB("ROB", engine)
    stub = OOOStub("Mem", engine)
    req = Requester("Req", engine, rob.top_port)
    wire(engine, req.out, rob.top_port, name="A")
    wire(engine, rob.bottom_port, stub.top_port, name="B")
    rob.connect_down(stub.top_port)
    for i in range(6):
        req.add_read(i * 64)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 6
    answered = [r.respond_to for r in req.responses]
    issued = [m.id for m in req.sent]
    assert answered == issued  # in-order retirement


def test_top_port_fills_when_downstream_is_stuck():
    """The Figure 3 / Figure 5(c) signature: TopPort.Buf pinned at 8/8."""
    engine = Engine()
    rob, stub, req = _setup(engine, stub_kwargs={"frozen": True,
                                                 "buf_capacity": 2})
    for i in range(32):
        req.add_read(i * 64)
    req.tick_later()
    engine.run()
    assert rob.top_port.buf.size == rob.top_port.buf.capacity == 8
    assert rob.top_port.buf.fullness == 1.0
    # Transactions admitted = what the frozen stub's buffer could absorb.
    assert rob.size <= 2 + 2  # stub buffer + inflight reservations


def test_capacity_bounds_admission():
    engine = Engine()
    rob, stub, req = _setup(engine, rob_kwargs={"capacity": 4},
                            stub_kwargs={"frozen": False,
                                         "latency_cycles": 200,
                                         "buf_capacity": 64})
    for i in range(16):
        req.add_read(i * 64)
    req.tick_later()
    engine.run_until(50e-9)
    assert rob.size <= 4
    engine.run()
    assert len(req.responses) == 16


def test_write_gets_write_done():
    engine = Engine()
    rob, stub, req = _setup(engine)
    req.add_write(0)
    req.tick_later()
    engine.run()
    assert isinstance(req.responses[0], WriteDoneRsp)


def test_read_gets_data_ready():
    engine = Engine()
    rob, stub, req = _setup(engine)
    req.add_read(0)
    req.tick_later()
    engine.run()
    assert isinstance(req.responses[0], DataReadyRsp)


def test_observables_exposed():
    engine = Engine()
    rob, stub, req = _setup(engine, stub_kwargs={"latency_cycles": 100})
    for i in range(8):
        req.add_read(i * 64)
    req.tick_later()
    engine.run_until(30e-9)
    assert rob.size > 0                       # monitored transactions
    assert rob.top_port.buf.name == "ROB.TopPort.Buf"
    engine.run()
    assert rob.size == 0
