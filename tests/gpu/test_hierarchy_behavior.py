"""Finer-grained behaviours of the assembled memory hierarchy."""

import pytest

from repro.gpu import GPUPlatform, GPUPlatformConfig, KernelDescriptor


def _loads(addresses, wgs=1, wfs=1):
    addr_list = list(addresses)

    def program(wg, wf):
        for a in addr_list:
            yield ("load", a, 4)

    return KernelDescriptor("probe", wgs, wfs, program)


def test_l2_banks_split_by_line_interleaving():
    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1, l2_banks=2))
    # Lines alternate between banks (line interleaving).
    p.driver.launch_kernel(_loads([0, 64, 128, 192, 256, 320]))
    assert p.run()
    bank0, bank1 = p.chiplets[0].l2s
    assert bank0.num_reads > 0
    assert bank1.num_reads > 0


def test_local_pages_skip_the_network():
    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    # Page 0 belongs to chiplet 0; only dispatch WG there.
    local_only = _loads([0, 64, 128])
    p.driver.launch_kernel(local_only)  # 1 wg -> chiplet 0
    assert p.run()
    assert p.switch.num_forwarded == 0
    assert p.chiplets[0].rdma.num_forwarded == 0


def test_remote_pages_cross_the_network():
    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    # Page 1 (4096..8191) belongs to chiplet 1; WG runs on chiplet 0.
    p.driver.launch_kernel(_loads([4096, 4160]))
    assert p.run()
    assert p.switch.num_forwarded > 0
    assert p.chiplets[0].rdma.num_forwarded > 0


def test_l1_hit_rate_improves_with_reuse():
    def program(wg, wf):
        # Touch two lines, wait out the fill latency, then re-touch:
        # the second wave must hit (back-to-back re-touches would
        # instead coalesce onto the in-flight MSHR entry).
        yield ("load", 0, 4)
        yield ("load", 64, 4)
        yield ("compute", 500)
        for _ in range(3):
            yield ("load", 0, 4)
            yield ("load", 64, 4)

    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    p.driver.launch_kernel(KernelDescriptor("reuse", 1, 1, program))
    assert p.run()
    l1 = p.chiplets[0].l1s[0]
    assert l1.tags.hits >= 6  # everything after the two cold misses
    assert l1.tags.misses == 2


def test_tlb_warm_after_single_page_workload():
    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    p.driver.launch_kernel(_loads([0, 4, 8, 12, 16]))
    assert p.run()
    at = p.chiplets[0].ats[0]
    assert at.tlb.misses >= 1
    assert at.tlb.hits >= 1


def test_write_then_read_round_trip():
    def program(wg, wf):
        yield ("store", 128, 4)
        yield ("load", 128, 4)

    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    k = p.driver.launch_kernel(KernelDescriptor("wr", 1, 1, program))
    assert p.run()
    assert k.done
    l2 = p.chiplets[0].l2s[0]
    assert l2.num_writes >= 1
    assert l2.num_reads >= 0  # read may hit L1 after the fill


def test_kernel_after_kernel_reuses_warm_caches():
    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    k1 = p.driver.launch_kernel(_loads([0, 64, 128]))
    k2 = p.driver.launch_kernel(_loads([0, 64, 128]))
    assert p.run()
    assert k1.done and k2.done
    dram = p.chiplets[0].drams[0]
    # Second kernel hits in L1/L2: DRAM saw each line once.
    assert dram.num_reads <= 3


def test_dispatcher_balances_wavefront_slots():
    cfg = GPUPlatformConfig.small(num_chiplets=1, sas_per_gpu=2,
                                  cus_per_sa=2)
    p = GPUPlatform(cfg)

    def program(wg, wf):
        yield ("compute", 50)

    p.driver.launch_kernel(KernelDescriptor("spread", 4, 2, program))
    assert p.run()
    counts = [cu.num_wgs_completed for cu in p.chiplets[0].cus]
    assert sum(counts) == 4
    assert max(counts) <= 2  # spread across CUs, not piled on one


def test_sim_time_scales_with_dram_latency():
    def run(latency):
        p = GPUPlatform(GPUPlatformConfig.small(
            num_chiplets=1, dram_latency_cycles=latency))
        p.driver.launch_kernel(_loads([i * 4096 for i in range(8)]))
        assert p.run()
        return p.simulation.now

    assert run(400) > run(20)
