"""Tests for the pure cache bookkeeping structures: tags, MSHR, TLB."""

import pytest
from hypothesis import given, strategies as st

from repro.akita import BufferError_, ConfigurationError
from repro.gpu import MSHR, SetAssocTags, TLB
from repro.gpu.mem import CACHE_LINE_SIZE


# ------------------------------------------------------------------ tags
def test_tags_geometry():
    tags = SetAssocTags(16 * 1024, 4)
    assert tags.num_sets == 64
    assert tags.ways == 4


def test_tags_bad_geometry_rejected():
    with pytest.raises(ConfigurationError):
        SetAssocTags(100, 3)


def test_tags_miss_then_hit():
    tags = SetAssocTags(1024, 2)
    assert not tags.lookup(0)
    tags.fill(0)
    assert tags.lookup(0)
    assert tags.hits == 1
    assert tags.misses == 1


def test_tags_lru_eviction():
    tags = SetAssocTags(2 * CACHE_LINE_SIZE, 2)  # 1 set, 2 ways
    tags.fill(0)
    tags.fill(64)
    tags.lookup(0)            # refresh line 0
    victim = tags.fill(128)   # must evict line 64 (LRU)
    assert victim is not None
    assert victim.line_addr == 64
    assert tags.contains(0)
    assert tags.contains(128)


def test_tags_dirty_victim():
    tags = SetAssocTags(2 * CACHE_LINE_SIZE, 2)
    tags.fill(0)
    tags.mark_dirty(0)
    tags.fill(64)
    victim = tags.fill(128)
    assert victim.dirty
    assert victim.line_addr == 0 or victim.line_addr == 64


def test_tags_fill_existing_is_not_eviction():
    tags = SetAssocTags(2 * CACHE_LINE_SIZE, 2)
    tags.fill(0)
    assert tags.fill(0) is None


def test_tags_invalidate():
    tags = SetAssocTags(1024, 2)
    tags.fill(0)
    tags.invalidate(0)
    assert not tags.contains(0)
    tags.invalidate(0)  # idempotent


def test_tags_occupancy_and_hit_rate():
    tags = SetAssocTags(1024, 2)
    assert tags.occupancy == 0
    assert tags.hit_rate == 0.0
    tags.fill(0)
    tags.lookup(0)
    tags.lookup(64 * 1024)
    assert tags.occupancy == 1
    assert tags.hit_rate == 0.5


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=200))
def test_tags_occupancy_never_exceeds_capacity(line_indices):
    tags = SetAssocTags(4 * CACHE_LINE_SIZE, 2)  # 2 sets x 2 ways
    for i in line_indices:
        tags.fill(i * CACHE_LINE_SIZE)
        assert tags.occupancy <= 4
        for s in tags._sets:
            assert len(s) <= tags.ways


# ------------------------------------------------------------------ MSHR
def test_mshr_capacity():
    mshr = MSHR(2)
    mshr.allocate(0)
    mshr.allocate(64)
    assert mshr.full
    with pytest.raises(BufferError_):
        mshr.allocate(128)


def test_mshr_requires_positive_capacity():
    with pytest.raises(ConfigurationError):
        MSHR(0)


def test_mshr_duplicate_rejected():
    mshr = MSHR(4)
    mshr.allocate(0)
    with pytest.raises(BufferError_):
        mshr.allocate(0)


def test_mshr_coalescing_workflow():
    mshr = MSHR(4)
    entry = mshr.allocate(64)
    entry.waiting.append("req1")
    same = mshr.lookup(64)
    assert same is entry
    same.waiting.append("req2")
    released = mshr.release(64)
    assert released.waiting == ["req1", "req2"]
    assert mshr.size == 0


def test_mshr_generic_keys():
    mshr = MSHR(4)
    mshr.allocate(("w", 17))
    assert mshr.lookup(("w", 17)) is not None
    assert mshr.lookup(("w", 18)) is None


# ------------------------------------------------------------------ TLB
def test_tlb_miss_then_fill_then_hit():
    tlb = TLB(capacity=2)
    assert not tlb.lookup(0)
    tlb.fill(0)
    assert tlb.lookup(0)
    assert tlb.lookup(100)  # same page (4096 bytes)


def test_tlb_requires_positive_capacity():
    with pytest.raises(ConfigurationError):
        TLB(0)


def test_tlb_lru_eviction():
    tlb = TLB(capacity=2)
    tlb.fill(0)
    tlb.fill(4096)
    tlb.lookup(0)       # refresh page 0
    tlb.fill(8192)      # evicts page 1
    assert tlb.lookup(0)
    assert not tlb.lookup(4096)


def test_tlb_hit_rate():
    tlb = TLB(capacity=4)
    tlb.lookup(0)
    tlb.fill(0)
    tlb.lookup(0)
    assert tlb.hit_rate == 0.5
    assert tlb.size == 1
