"""Tests for the TickStepper (the case-study-2 step-debugging shim)."""

import pytest

from repro.akita import Engine, TickingComponent
from repro.gpu import GPUPlatform
from repro.gpu.debug import TickStepper
from repro.workloads import StoreStorm


class _Counter(TickingComponent):
    def __init__(self, engine, budget=3):
        super().__init__("C", engine)
        self.port = self.add_port("P", 4)
        self.budget = budget
        self.blocked_on = None

    def tick(self):
        if self.budget == 0:
            self.blocked_on = "out of budget"
            return False
        self.budget -= 1
        self.port.buf.push("item")
        return True


def test_step_runs_exactly_one_tick():
    engine = Engine()
    c = _Counter(engine)
    stepper = TickStepper(c)
    record = stepper.step()
    assert record.made_progress
    assert c.budget == 2
    assert len(stepper.records) == 1


def test_step_records_buffer_deltas():
    engine = Engine()
    c = _Counter(engine)
    stepper = TickStepper(c)
    record = stepper.step()
    assert record.buffer_levels["C.P.Buf"] == (0, 1)
    assert record.buffer_deltas == {"C.P.Buf": 1}


def test_stuck_component_diagnosed():
    engine = Engine()
    c = _Counter(engine, budget=1)
    stepper = TickStepper(c)
    stepper.step()           # consumes the budget
    stepper.step()           # now stuck
    assert stepper.stuck
    assert stepper.diagnosis() == "out of budget"
    assert not stepper.records[-1].buffer_deltas


def test_on_tick_callback_is_the_breakpoint_body():
    engine = Engine()
    c = _Counter(engine)
    hits = []
    stepper = TickStepper(c, on_tick=hits.append)
    stepper.step(ticks=2)
    assert len(hits) == 2


def test_context_manager_uninstalls():
    engine = Engine()
    c = _Counter(engine)
    original = c.tick
    with TickStepper(c) as stepper:
        stepper.step()
        assert c.tick != original
    assert c.tick == original  # bound-method equality: same func+self


@pytest.mark.slow
def test_stepping_the_hung_write_buffer():
    """The full case-study-2 flow: hang, then step the suspects."""
    platform = GPUPlatform(StoreStorm.trigger_config(buggy=True))
    StoreStorm().enqueue(platform.driver)
    assert platform.run() is False  # the deadlock
    assert platform.simulation.run_state == "hung"

    l2 = platform.chiplets[0].l2s[0]
    wb = platform.chiplets[0].write_buffers[0]

    l2_step = TickStepper(l2)
    record = l2_step.step()
    assert not record.made_progress
    assert "write buffer" in l2_step.diagnosis()

    wb_step = TickStepper(wb)
    record = wb_step.step()
    assert not record.made_progress
    assert "local storage" in wb_step.diagnosis()
