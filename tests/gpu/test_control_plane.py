"""Tests for CU, dispatcher, command processor, driver, and the
fully assembled platform."""

import pytest

from repro.gpu import (
    GPUPlatform,
    GPUPlatformConfig,
    KernelDescriptor,
    KernelState,
)


def _compute_kernel(num_wgs=4, wfs=2, cycles=8):
    def program(wg, wf):
        yield ("compute", cycles)

    return KernelDescriptor("compute", num_wgs, wfs, program)


def _mem_kernel(num_wgs=4, wfs=2, n_loads=4, footprint=1 << 20):
    def program(wg, wf):
        base = (wg * 7919 + wf * 104729) % footprint
        for i in range(n_loads):
            yield ("load", (base + i * 64) % footprint, 4)
        yield ("store", base % footprint, 4)

    return KernelDescriptor("mem", num_wgs, wfs, program)


@pytest.fixture
def small_platform():
    return GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))


def test_compute_only_kernel_completes(small_platform):
    p = small_platform
    state = p.driver.launch_kernel(_compute_kernel())
    assert p.run()
    assert state.done
    assert state.completed == 4
    assert state.ongoing == 0
    assert state.not_started == 0


def test_memory_kernel_completes(small_platform):
    p = small_platform
    state = p.driver.launch_kernel(_mem_kernel(num_wgs=8))
    assert p.run()
    assert state.completed == 8


def test_memcopy_progress_tracked(small_platform):
    p = small_platform
    copy = p.driver.memcopy_h2d(10_000)
    assert p.run()
    assert copy.done
    assert copy.copied_bytes == 10_000
    assert copy.direction == "h2d"


def test_commands_execute_in_order(small_platform):
    p = small_platform
    c1 = p.driver.memcopy_h2d(4096)
    k = p.driver.launch_kernel(_compute_kernel())
    c2 = p.driver.memcopy_d2h(4096)
    assert p.run()
    assert c1.done and k.done and c2.done
    assert p.driver.commands_completed == 3


def test_kernel_splits_across_chiplets():
    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    state = p.driver.launch_kernel(_compute_kernel(num_wgs=10))
    assert p.run()
    assert state.completed == 10
    d0 = p.chiplets[0].dispatcher
    d1 = p.chiplets[1].dispatcher
    assert d0.num_dispatched == 5
    assert d1.num_dispatched == 5


def test_progress_counts_are_consistent_mid_run(small_platform):
    p = small_platform
    state = p.driver.launch_kernel(_mem_kernel(num_wgs=16))
    p.start()
    engine = p.engine
    target = 100e-9
    while not p.simulation.done and engine.now < 1e-3:
        engine.run_until(target)
        target += 100e-9
        assert 0 <= state.completed <= state.total
        assert 0 <= state.ongoing <= state.total
        assert state.completed + state.ongoing + state.not_started \
            == state.total
        if p.simulation.done:
            break
    assert state.done


def test_multiple_kernels_sequential(small_platform):
    p = small_platform
    k1 = p.driver.launch_kernel(_compute_kernel(num_wgs=2))
    k2 = p.driver.launch_kernel(_mem_kernel(num_wgs=2))
    assert p.run()
    assert k1.done and k2.done


def test_platform_component_naming_matches_paper():
    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    names = set(p.simulation.component_names)
    assert "Driver" in names
    assert "InterChipletSwitch" in names
    assert "GPU[0].SA[0].CU[0]" in names
    assert "GPU[0].SA[0].L1VROB[0]" in names
    assert "GPU[0].SA[0].L1VAddrTrans[0]" in names
    assert "GPU[0].SA[0].L1VCache[0]" in names
    assert "GPU[1].L2[0]" in names
    assert "GPU[1].WriteBuffer[0]" in names
    assert "GPU[1].DRAM[0]" in names
    assert "GPU[1].RDMA" in names
    assert "GPU[1].Dispatcher" in names
    assert "GPU[1].CommandProcessor" in names


def test_buffer_names_match_paper_figure3():
    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    rob = p.chiplets[0].robs[0]
    assert rob.top_port.buf.name == "GPU[0].SA[0].L1VROB[0].TopPort.Buf"


def test_r9_nano_mcm_defaults():
    cfg = GPUPlatformConfig.r9_nano_mcm()
    assert cfg.num_chiplets == 4
    assert cfg.cus_per_gpu == 64
    assert cfg.l1_size_bytes == 16 * 1024
    assert cfg.l1_mshr == 16
    assert cfg.rob_top_buf == 8


def test_r9_nano_mcm_builds_full_hierarchy():
    p = GPUPlatform(GPUPlatformConfig.r9_nano_mcm(num_chiplets=4))
    # 4 chiplets x (16 SAs x 4 CUs x 4 chain components) + per-chiplet
    # and global components.
    assert len(p.chiplets) == 4
    assert len(p.chiplets[0].cus) == 64
    assert len(p.simulation.components) > 1000


def test_config_validation():
    from repro.akita import ConfigurationError
    with pytest.raises(ConfigurationError):
        GPUPlatformConfig(num_chiplets=0)
    with pytest.raises(ConfigurationError):
        GPUPlatformConfig(sas_per_gpu=0)
    with pytest.raises(ConfigurationError):
        GPUPlatformConfig(l2_banks=0)


def test_kernel_descriptor_validation():
    with pytest.raises(ValueError):
        KernelDescriptor("bad", 0, 1, lambda wg, wf: iter(()))
    with pytest.raises(ValueError):
        KernelDescriptor("bad", 1, 0, lambda wg, wf: iter(()))


def test_kernel_state_counters():
    k = KernelDescriptor("k", 4, 1, lambda wg, wf: iter(()))
    state = KernelState(k)
    assert state.total == 4
    state.start_wg()
    assert state.ongoing == 1
    assert state.not_started == 3
    state.finish_wg()
    assert state.completed == 1
    assert not state.done


def test_remote_traffic_flows_in_multichiplet_run():
    p = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    # Addresses spanning both chiplets' pages.
    state = p.driver.launch_kernel(_mem_kernel(num_wgs=8, n_loads=8,
                                               footprint=1 << 20))
    assert p.run()
    assert state.done
    total_rdma = sum(c.rdma.num_forwarded for c in p.chiplets)
    assert total_rdma > 0
    assert p.switch.num_forwarded > 0
