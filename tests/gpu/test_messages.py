"""Tests for memory-system message types and address helpers."""

import pytest

from repro.akita import Engine
from repro.gpu import (
    CACHE_LINE_SIZE,
    DataReadyRsp,
    EvictionReq,
    FetchedData,
    NetMsg,
    ReadReq,
    WriteDoneRsp,
    WriteReq,
    line_address,
)
from repro.gpu.mem import MemReq, MemRsp


class _Holder:
    """Bare port stand-in (messages only need an object reference)."""

    def __init__(self, name="P"):
        self.name = name


def test_line_address_alignment():
    assert line_address(0) == 0
    assert line_address(63) == 0
    assert line_address(64) == 64
    assert line_address(130) == 128
    assert CACHE_LINE_SIZE == 64


def test_read_req_fields():
    dst = _Holder()
    req = ReadReq(dst, 0x1234, 4)
    assert req.dst is dst
    assert req.address == 0x1234
    assert req.access_bytes == 4
    assert req.line_addr == 0x1200
    assert isinstance(req, MemReq)


def test_write_req_wire_size_includes_payload():
    req = WriteReq(_Holder(), 0, 64)
    small = WriteReq(_Holder(), 0, 4)
    assert req.size_bytes > small.size_bytes
    assert req.size_bytes == 16 + 64


def test_responses_reference_their_request():
    req = ReadReq(_Holder(), 0, 4)
    rsp = DataReadyRsp(_Holder(), req.id, 64)
    assert rsp.respond_to == req.id
    assert isinstance(rsp, MemRsp)
    ack = WriteDoneRsp(_Holder(), req.id)
    assert ack.respond_to == req.id


def test_data_ready_wire_size_includes_data():
    big = DataReadyRsp(_Holder(), 1, data_bytes=64)
    small = DataReadyRsp(_Holder(), 1, data_bytes=4)
    assert big.size_bytes > small.size_bytes


def test_eviction_and_fill_carry_line_payloads():
    ev = EvictionReq(_Holder(), 0x80)
    assert ev.address == 0x80
    assert ev.size_bytes == 16 + CACHE_LINE_SIZE
    fill = FetchedData(_Holder(), 0x80, respond_to=7)
    assert fill.address == 0x80
    assert fill.respond_to == 7


def test_netmsg_wraps_payload_with_overhead():
    payload = ReadReq(_Holder(), 0, 64)
    origin, final = _Holder("origin"), _Holder("final")
    envelope = NetMsg(_Holder("switch"), payload, final, origin)
    assert envelope.payload is payload
    assert envelope.final_dst is final
    assert envelope.origin is origin
    assert envelope.size_bytes == payload.size_bytes + 8


def test_message_ids_are_unique_and_increasing():
    a = ReadReq(_Holder(), 0, 4)
    b = WriteReq(_Holder(), 0, 4)
    c = EvictionReq(_Holder(), 0)
    assert a.id < b.id < c.id
