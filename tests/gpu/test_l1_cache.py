"""Tests for the L1 vector cache: hits, misses, MSHR behaviour, routing."""

import pytest

from repro.akita import Engine
from repro.gpu import L1VCache
from repro.gpu.mem import CACHE_LINE_SIZE

from .harness import MemoryStub, Requester, wire


def _setup(engine, l1_kwargs=None, stub_kwargs=None):
    l1 = L1VCache("L1", engine, **(l1_kwargs or {}))
    stub = MemoryStub("Mem", engine, **(stub_kwargs or {}))
    req = Requester("Req", engine, l1.top_port)
    wire(engine, req.out, l1.top_port, name="ReqL1")
    wire(engine, l1.bottom_port, stub.top_port, name="L1Mem")
    l1.set_route(lambda addr: stub.top_port)
    return l1, stub, req


def test_cold_miss_fetches_line_then_hits():
    engine = Engine()
    l1, stub, req = _setup(engine)
    req.add_read(0)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 1
    assert len(stub.seen) == 1
    assert stub.seen[0].access_bytes == CACHE_LINE_SIZE
    assert l1.tags.contains(0)

    # Second access to the same line: no new downstream traffic.
    req.add_read(4)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 2
    assert len(stub.seen) == 1
    assert l1.num_reads == 2


def test_miss_coalescing_single_fetch():
    engine = Engine()
    l1, stub, req = _setup(engine, stub_kwargs={"latency_cycles": 50})
    for _ in range(4):
        req.add_read(128)  # same line, all before fill returns
    req.tick_later()
    engine.run()
    assert len(req.responses) == 4
    assert len(stub.seen) == 1  # coalesced


def test_write_through_no_allocate():
    engine = Engine()
    l1, stub, req = _setup(engine)
    req.add_write(256)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 1
    assert len(stub.seen) == 1
    assert not l1.tags.contains(256)  # no allocation on write


def test_mshr_full_pins_transactions_at_capacity():
    """The Figure 5(d) L1 signature: pinned at MSHR capacity (16)."""
    engine = Engine()
    l1, stub, req = _setup(engine,
                           l1_kwargs={"mshr_capacity": 16},
                           stub_kwargs={"frozen": True})
    for i in range(64):
        req.add_read(i * CACHE_LINE_SIZE)
    req.tick_later()
    engine.run()
    assert l1.transactions == 16
    assert l1.top_port.buf.fullness == 1.0  # backpressure above


def test_mshr_drains_when_downstream_resumes():
    engine = Engine()
    l1, stub, req = _setup(engine, l1_kwargs={"mshr_capacity": 4},
                           stub_kwargs={"frozen": True})
    for i in range(12):
        req.add_read(i * CACHE_LINE_SIZE)
    req.tick_later()
    engine.run()
    assert l1.transactions == 4
    stub.frozen = False
    stub.tick_later()
    engine.run()
    assert l1.transactions == 0
    assert len(req.responses) == 12


def test_route_function_selects_destination():
    engine = Engine()
    l1 = L1VCache("L1", engine)
    local = MemoryStub("Local", engine)
    remote = MemoryStub("Remote", engine)
    req = Requester("Req", engine, l1.top_port)
    wire(engine, req.out, l1.top_port, name="A")
    wire(engine, l1.bottom_port, local.top_port, remote.top_port, name="B")
    l1.set_route(lambda addr: local.top_port if addr < 4096
                 else remote.top_port)
    req.add_read(0)
    req.add_read(8192)
    req.tick_later()
    engine.run()
    assert len(local.seen) == 1
    assert len(remote.seen) == 1
    assert len(req.responses) == 2


def test_fill_evicts_lru_line():
    engine = Engine()
    # 2 sets x 2 ways = 4 lines of 64B -> 256B cache
    l1, stub, req = _setup(engine, l1_kwargs={"size_bytes": 256, "ways": 2})
    set_stride = 2 * CACHE_LINE_SIZE
    for i in range(3):  # 3 lines mapping to set 0
        req.add_read(i * set_stride)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 3
    assert not l1.tags.contains(0)  # LRU evicted
    assert l1.tags.contains(2 * set_stride)


def test_hit_latency_observed():
    engine = Engine()
    l1, stub, req = _setup(engine, l1_kwargs={"hit_latency": 5})
    req.add_read(0)
    req.tick_later()
    engine.run()
    t_miss = engine.now
    req.add_read(0)
    req.tick_later()
    engine.run()
    t_hit = engine.now - t_miss
    assert t_hit < t_miss  # hits are faster than the cold miss
