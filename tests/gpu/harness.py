"""Shared test harness components for exercising single GPU components.

* :class:`Requester` — issues a scripted sequence of memory requests into
  a target port and records responses in arrival order.
* :class:`MemoryStub` — terminates a chain: answers every request after a
  fixed latency, optionally out of order or not at all (to model a stuck
  downstream and create backpressure).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.akita import DirectConnection, Engine, TickingComponent
from repro.gpu import DataReadyRsp, MemReq, MemRsp, ReadReq, WriteDoneRsp, WriteReq


class Requester(TickingComponent):
    """Feeds requests into a component's top port, gathers responses."""

    def __init__(self, name, engine, target_port, reqs=None,
                 buf_capacity=16):
        super().__init__(name, engine)
        self.out = self.add_port("Out", buf_capacity)
        self.target_port = target_port
        self.to_send: List[Tuple[str, int, int]] = list(reqs or [])
        self.sent: List[MemReq] = []
        self.responses: List[MemRsp] = []

    def add_read(self, addr, nbytes=4):
        self.to_send.append(("load", addr, nbytes))

    def add_write(self, addr, nbytes=4):
        self.to_send.append(("store", addr, nbytes))

    def tick(self):
        progress = False
        while True:
            msg = self.out.retrieve_incoming()
            if msg is None:
                break
            self.responses.append(msg)
            progress = True
        while self.to_send:
            kind, addr, nbytes = self.to_send[0]
            if kind == "load":
                req = ReadReq(self.target_port, addr, nbytes)
            else:
                req = WriteReq(self.target_port, addr, nbytes)
            if not self.out.send(req):
                break
            self.to_send.pop(0)
            self.sent.append(req)
            progress = True
        return progress


class MemoryStub(TickingComponent):
    """Answers everything after ``latency_cycles``; can be frozen."""

    def __init__(self, name, engine, latency_cycles=2, buf_capacity=16,
                 frozen=False):
        super().__init__(name, engine)
        self.top_port = self.add_port("TopPort", buf_capacity)
        self.latency_cycles = latency_cycles
        self.frozen = frozen
        self._inflight: List[Tuple[float, int, MemReq]] = []
        self._seq = 0
        self.seen: List[MemReq] = []

    def tick(self):
        if self.frozen:
            return False
        progress = False
        now = self.engine.now
        while self._inflight and self._inflight[0][0] <= now + 1e-15:
            _, __, req = self._inflight[0]
            if isinstance(req, ReadReq):
                rsp = DataReadyRsp(req.src, req.id, req.access_bytes)
            else:
                rsp = WriteDoneRsp(req.src, req.id)
            if not self.top_port.send(rsp):
                break
            heapq.heappop(self._inflight)
            progress = True
        while True:
            msg = self.top_port.peek_incoming()
            if not isinstance(msg, MemReq):
                break
            self.top_port.retrieve_incoming()
            self.seen.append(msg)
            ready = now + self.latency_cycles / self.freq
            heapq.heappush(self._inflight, (ready, self._seq, msg))
            self._seq += 1
            progress = True
        if (self._inflight and not progress
                and self._inflight[0][0] > now + 1e-15):
            self.tick_at(self._inflight[0][0])
        return progress


def wire(engine: Engine, *ports, latency_cycles: int = 1,
         name: str = "TestConn") -> DirectConnection:
    """Connect ports with a DirectConnection at 1 GHz cycle latency."""
    conn = DirectConnection(name, engine, latency=latency_cycles * 1e-9)
    for p in ports:
        conn.plug_in(p)
    return conn


def run_to_quiescence(engine: Engine, max_time: float = 1e-3) -> None:
    """Run the engine until the queue dries (bounded by *max_time*)."""
    engine.run_until(max_time)
