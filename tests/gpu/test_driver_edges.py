"""Edge cases of the driver's command queue."""

import pytest

from repro.gpu import GPUPlatform, GPUPlatformConfig, KernelDescriptor


def _tiny_kernel(num_wgs=1):
    return KernelDescriptor("tiny", num_wgs, 1,
                            lambda wg, wf: iter([("compute", 1)]))


def test_empty_command_queue_completes_immediately():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    assert platform.run()
    assert platform.driver.all_done
    assert platform.simulation.now == pytest.approx(1e-9, abs=1e-9)


def test_zero_byte_memcopy():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    copy = platform.driver.memcopy_h2d(0)
    assert platform.run()
    assert copy.done


def test_single_workgroup_kernel():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    state = platform.driver.launch_kernel(_tiny_kernel(1))
    assert platform.run()
    assert state.completed == 1
    # Only one chiplet received work.
    dispatched = [c.dispatcher.num_dispatched for c in platform.chiplets]
    assert sorted(dispatched) == [0, 1]


def test_more_workgroups_than_slots_queue_up():
    cfg = GPUPlatformConfig.small(num_chiplets=1, sas_per_gpu=1,
                                  cus_per_sa=1)
    platform = GPUPlatform(cfg)
    # 1 CU x 10 wf slots; 40 single-wavefront WGs must round-trip.
    state = platform.driver.launch_kernel(_tiny_kernel(40))
    assert platform.run()
    assert state.completed == 40


def test_driver_command_order_is_strict():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    order = []

    def make(tag, n):
        def program(wg, wf):
            order.append(tag)
            yield ("compute", n)

        return KernelDescriptor(tag, 1, 1, program)

    platform.driver.launch_kernel(make("first", 5))
    platform.driver.launch_kernel(make("second", 5))
    assert platform.run()
    assert order == ["first", "second"]


def test_queue_length_counts_pending_commands():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))
    driver = platform.driver
    assert driver.queue_length == 0
    driver.memcopy_h2d(64)
    driver.launch_kernel(_tiny_kernel())
    assert driver.queue_length == 2
    assert platform.run()
    assert driver.queue_length == 0
    assert driver.commands_completed == 2


def test_dma_rate_scales_memcopy_time():
    def copy_time(rate):
        platform = GPUPlatform(GPUPlatformConfig.small(
            num_chiplets=1, dma_bytes_per_cycle=rate))
        platform.driver.memcopy_h2d(1 << 20)
        assert platform.run()
        return platform.simulation.now

    assert copy_time(64) > copy_time(1024) * 8
