"""Tests for the per-SA scalar memory path (L1SAddrTrans + L1SCache)."""

import pytest

from repro.gpu import GPUPlatform, GPUPlatformConfig, KernelDescriptor


def _scalar_kernel(num_wgs=4, wfs=2):
    def program(wg, wf):
        yield ("sload", 1 << 16, 64)    # shared table, same for all wfs
        yield ("load", wg * 4096, 4)    # per-wg vector traffic
        yield ("sload", 1 << 16, 4)
        yield ("compute", 2)

    return KernelDescriptor("scalar", num_wgs, wfs, program)


@pytest.fixture
def platform():
    return GPUPlatform(GPUPlatformConfig.small(num_chiplets=1))


def test_scalar_components_exist_per_sa(platform):
    names = set(platform.simulation.component_names)
    cfg = platform.config
    for j in range(cfg.sas_per_gpu):
        assert f"GPU[0].SA[{j}].L1SCache[0]" in names
        assert f"GPU[0].SA[{j}].L1SAddrTrans[0]" in names
    assert len(platform.chiplets[0].scalar_caches) == cfg.sas_per_gpu


def test_sloads_travel_the_scalar_path(platform):
    kernel = platform.driver.launch_kernel(_scalar_kernel())
    assert platform.run()
    assert kernel.done
    scalar_reads = sum(c.num_reads
                       for c in platform.chiplets[0].scalar_caches)
    assert scalar_reads > 0
    # Vector L1s never see the shared-table address.
    for l1 in platform.chiplets[0].l1s:
        assert not l1.tags.contains(1 << 16)


def test_scalar_cache_is_shared_within_the_sa(platform):
    """Two CUs of the same SA fetch the same line once from below."""
    kernel = platform.driver.launch_kernel(_scalar_kernel(num_wgs=2,
                                                          wfs=2))
    assert platform.run()
    chiplet = platform.chiplets[0]
    # The shared line is fetched at most once per SA scalar cache
    # (coalesced/hit afterwards), not once per CU request.
    for cache in chiplet.scalar_caches:
        if cache.num_reads:
            # Downstream fetches (not lookup misses, which count every
            # coalesced request): the shared line goes below only once.
            assert cache.bottom_port.num_sent <= 2


def test_scalar_misses_route_to_memory_like_vector_ones():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    remote_table = 4096  # page 1 -> chiplet 1: scalar path uses RDMA

    def program(wg, wf):
        yield ("sload", remote_table, 64)

    platform.driver.launch_kernel(KernelDescriptor("rs", 1, 1, program))
    assert platform.run()
    assert platform.switch.num_forwarded > 0


def test_sload_falls_back_to_vector_path_without_scalar_wiring():
    from repro.akita import Engine
    from repro.gpu import ComputeUnit
    import tests.gpu.harness as harness

    engine = Engine()
    cu = ComputeUnit("CU", engine)
    stub = harness.MemoryStub("Mem", engine, latency_cycles=2)
    ctrl_sink = harness.MemoryStub("Ctrl", engine)
    harness.wire(engine, cu.mem_port, stub.top_port)
    harness.wire(engine, cu.ctrl_port, ctrl_sink.top_port, name="Ctl")
    cu.connect(stub.top_port, dispatcher_port=ctrl_sink.top_port,
               scalar_top=None)

    from repro.gpu.kernel import KernelDescriptor as KD
    from repro.gpu.kernel import KernelState
    from repro.gpu.protocol import MapWGMsg

    descriptor = KD("k", 1, 1, lambda wg, wf: iter([("sload", 0, 4)]))
    state = KernelState(descriptor)
    # Deliver a workgroup directly (no dispatcher in this harness).
    cu.ctrl_port.buf.push(MapWGMsg(cu.ctrl_port, state, 0, 0))
    cu.tick_later()
    engine.run_until(1e-6)
    assert len(stub.seen) == 1  # went through the vector port


def test_scalar_path_visible_to_monitor(platform):
    from repro.core import Monitor

    monitor = Monitor(platform.simulation)
    detail = monitor.component_detail("GPU[0].SA[0].L1SCache[0]")
    assert "mshr" in detail["fields"]
    tree = monitor.component_tree()
    assert "L1SCache[0]" in tree["GPU[0]"]["SA[0]"]
