"""Tests for the DRAM controller, RDMA engines, and the chiplet switch."""

import pytest

from repro.akita import Engine
from repro.gpu import (
    AddressMapper,
    ChipletSwitch,
    DRAMController,
    RDMAEngine,
)
from repro.gpu.mem import CACHE_LINE_SIZE

from .harness import MemoryStub, Requester, wire


# ------------------------------------------------------------------ DRAM
def test_dram_answers_after_latency():
    engine = Engine()
    dram = DRAMController("DRAM", engine, latency_cycles=100)
    req = Requester("Req", engine, dram.top_port)
    wire(engine, req.out, dram.top_port)
    req.add_read(0)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 1
    assert engine.now >= 100e-9


def test_dram_throughput_limit():
    engine = Engine()
    dram = DRAMController("DRAM", engine, latency_cycles=10,
                          requests_per_cycle=1)
    req = Requester("Req", engine, dram.top_port)
    wire(engine, req.out, dram.top_port)
    n = 20
    for i in range(n):
        req.add_read(i * 64)
    req.tick_later()
    engine.run()
    assert len(req.responses) == n
    # 1 request accepted per cycle -> completion takes at least n cycles.
    assert engine.now >= n * 1e-9


def test_dram_transactions_observable():
    engine = Engine()
    dram = DRAMController("DRAM", engine, latency_cycles=1000)
    req = Requester("Req", engine, dram.top_port)
    wire(engine, req.out, dram.top_port)
    for i in range(8):
        req.add_read(i * 64)
    req.tick_later()
    engine.run_until(50e-9)
    assert dram.transactions > 0
    engine.run()
    assert dram.transactions == 0


def test_dram_mixed_reads_writes():
    engine = Engine()
    dram = DRAMController("DRAM", engine, latency_cycles=5)
    req = Requester("Req", engine, dram.top_port)
    wire(engine, req.out, dram.top_port)
    req.add_read(0)
    req.add_write(64)
    req.tick_later()
    engine.run()
    assert dram.num_reads == 1
    assert dram.num_writes == 1


# ------------------------------------------------------- RDMA + switch
def _two_chiplet_fabric(engine, msgs_per_cycle=4, link_latency=2):
    """Two RDMA engines joined by a switch; each chiplet's 'L2' is a
    MemoryStub."""
    mapper = AddressMapper(num_chiplets=2)
    switch = ChipletSwitch("Switch", engine, 2,
                           msgs_per_cycle=msgs_per_cycle)
    rdmas, stubs = [], []
    for i in range(2):
        rdma = RDMAEngine(f"RDMA{i}", engine, i)
        stub = MemoryStub(f"L2Stub{i}", engine, latency_cycles=3,
                          buf_capacity=32)
        wire(engine, rdma.l2_port, stub.top_port, name=f"R{i}L2")
        wire(engine, rdma.net_port, switch.switch_port(i),
             latency_cycles=link_latency, name=f"Link{i}")
        switch.add_route(rdma.net_port, i)
        rdmas.append(rdma)
        stubs.append(stub)
    for i, rdma in enumerate(rdmas):
        rdma.connect(
            switch_port=switch.switch_port(i),
            remote_ports={j: r.net_port for j, r in enumerate(rdmas)},
            bank_route=lambda addr, s=stubs[i]: s.top_port,
            chiplet_of=mapper.chiplet_of,
        )
    return mapper, switch, rdmas, stubs


def test_remote_read_round_trip():
    engine = Engine()
    mapper, switch, rdmas, stubs = _two_chiplet_fabric(engine)
    req = Requester("Req", engine, rdmas[0].l1_port)
    wire(engine, req.out, rdmas[0].l1_port, name="ReqRDMA")
    remote_addr = 4096  # page 1 -> chiplet 1
    assert mapper.chiplet_of(remote_addr) == 1
    req.add_read(remote_addr, CACHE_LINE_SIZE)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 1
    assert len(stubs[1].seen) == 1           # served by the remote chiplet
    assert stubs[0].seen == []
    assert rdmas[0].transactions == 0        # drained after completion


def test_remote_write_round_trip():
    engine = Engine()
    mapper, switch, rdmas, stubs = _two_chiplet_fabric(engine)
    req = Requester("Req", engine, rdmas[0].l1_port)
    wire(engine, req.out, rdmas[0].l1_port, name="ReqRDMA")
    req.add_write(4096 + 128)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 1
    assert stubs[1].seen[0].address == 4096 + 128


def test_rdma_transactions_grow_when_network_is_slow():
    """Case study 1's headline: a slow switch piles transactions up in
    the RDMA engine."""
    engine = Engine()
    mapper, switch, rdmas, stubs = _two_chiplet_fabric(
        engine, msgs_per_cycle=1, link_latency=20)
    req = Requester("Req", engine, rdmas[0].l1_port, buf_capacity=64)
    wire(engine, req.out, rdmas[0].l1_port, name="ReqRDMA")
    for i in range(40):
        req.add_read(4096 + i * 64, CACHE_LINE_SIZE)
    req.tick_later()
    engine.run_until(100e-9)
    assert rdmas[0].transactions > 10
    engine.run()
    assert len(req.responses) == 40
    assert rdmas[0].transactions == 0


def test_switch_routes_between_many_ports():
    engine = Engine()
    mapper, switch, rdmas, stubs = _two_chiplet_fabric(engine)
    req0 = Requester("Req0", engine, rdmas[0].l1_port)
    req1 = Requester("Req1", engine, rdmas[1].l1_port)
    wire(engine, req0.out, rdmas[0].l1_port, name="R0")
    wire(engine, req1.out, rdmas[1].l1_port, name="R1")
    req0.add_read(4096)   # chiplet 0 -> chiplet 1
    req1.add_read(0)      # chiplet 1 -> chiplet 0
    req0.tick_later()
    req1.tick_later()
    engine.run()
    assert len(req0.responses) == 1
    assert len(req1.responses) == 1
    assert switch.num_forwarded == 4  # 2 requests + 2 responses


def test_switch_forwarding_rate_bounds_throughput():
    engine = Engine()
    mapper, switch, rdmas, stubs = _two_chiplet_fabric(
        engine, msgs_per_cycle=1, link_latency=1)
    req = Requester("Req", engine, rdmas[0].l1_port, buf_capacity=64)
    wire(engine, req.out, rdmas[0].l1_port, name="ReqRDMA")
    n = 30
    for i in range(n):
        req.add_read(4096 + i * 64, CACHE_LINE_SIZE)
    req.tick_later()
    engine.run()
    # Each request crosses the switch twice (req + rsp) at 1 msg/cycle.
    assert engine.now >= 2 * n * 1e-9
    assert len(req.responses) == n


def test_address_mapper_interleaving():
    mapper = AddressMapper(num_chiplets=4, banks_per_chiplet=2)
    assert mapper.chiplet_of(0) == 0
    assert mapper.chiplet_of(4096) == 1
    assert mapper.chiplet_of(4 * 4096) == 0
    assert mapper.is_local(0, 0)
    assert not mapper.is_local(4096, 0)
    assert mapper.bank_of(0) == 0
    assert mapper.bank_of(64) == 1
    assert mapper.bank_of(128) == 0
    assert mapper.page_of(8192) == 2
    assert mapper.page_base(8200) == 8192
