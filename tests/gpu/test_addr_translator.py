"""Tests for the address translator and its TLB timing."""

import pytest

from repro.akita import Engine
from repro.gpu import AddressTranslator

from .harness import MemoryStub, Requester, wire


def _setup(engine, at_kwargs=None, stub_kwargs=None):
    at = AddressTranslator("AT", engine, **(at_kwargs or {}))
    stub = MemoryStub("Mem", engine, **(stub_kwargs or {}))
    req = Requester("Req", engine, at.top_port)
    wire(engine, req.out, at.top_port, name="ReqAT")
    wire(engine, at.bottom_port, stub.top_port, name="ATMem")
    at.connect_down(stub.top_port)
    return at, stub, req


def test_requests_pass_through_translated():
    engine = Engine()
    at, stub, req = _setup(engine)
    req.add_read(0x1234)
    req.add_write(0x2000)
    req.tick_later()
    engine.run()
    assert len(req.responses) == 2
    assert [m.address for m in stub.seen] == [0x1234, 0x2000]
    assert at.num_translated == 2
    assert at.transactions == 0


def test_tlb_miss_costs_more_than_hit():
    engine = Engine()
    at, stub, req = _setup(engine, at_kwargs={"miss_latency": 50})
    req.add_read(0)  # TLB miss: pays the 50-cycle walk
    req.tick_later()
    engine.run()
    t_miss = engine.now
    req.add_read(8)  # same page: TLB hit
    req.tick_later()
    engine.run()
    t_hit = engine.now - t_miss
    assert t_hit < t_miss
    assert t_miss >= 50e-9


def test_tlb_state_updated():
    engine = Engine()
    at, stub, req = _setup(engine)
    req.add_read(0)
    req.add_read(4)
    req.tick_later()
    engine.run()
    assert at.tlb.hits == 1
    assert at.tlb.misses == 1


def test_max_inflight_limits_pipeline_and_backpressures():
    """The translation pipeline is the held resource: with a stuck
    downstream it fills to max_inflight, and further requests back up
    in the top port (requests already forwarded below are bookkeeping,
    not capacity — see Figure 5's translator signature)."""
    engine = Engine()
    at, stub, req = _setup(engine, at_kwargs={"max_inflight": 4},
                           stub_kwargs={"frozen": True, "buf_capacity": 2})
    for i in range(16):
        req.add_read(i * 64)
    req.tick_later()
    engine.run()
    assert at.transactions <= 4               # pipeline bounded
    assert at.inflight_below <= 2             # what the stub absorbed
    assert at.top_port.buf.fullness == 1.0    # backpressure above


def test_transactions_spike_and_drain():
    """Figure 5(d)'s translator signature: bursts that drain when the
    downstream accepts at full rate."""
    engine = Engine()
    at, stub, req = _setup(engine, stub_kwargs={"latency_cycles": 1,
                                                "buf_capacity": 64})
    for i in range(32):
        req.add_read(i * 4096)  # all TLB misses: pipeline fills
    req.tick_later()
    engine.run_until(10e-9)
    peak = at.transactions
    assert peak > 0
    engine.run()
    assert at.transactions == 0
    assert len(req.responses) == 32
