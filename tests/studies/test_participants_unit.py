"""Unit tests of participant agents against a scripted fake client
(no simulations: pure behaviour checks)."""

import pytest

from repro.studies.participants import (
    PARTICIPANTS,
    Findings,
    ParticipantAgent,
    Profile,
)


class FakeClient:
    """Deterministic stand-in for RTMClient."""

    def __init__(self, rob_pinned=True, l1_peak=16, rdma_peak=90):
        self.rob_pinned = rob_pinned
        self.l1_peak = l1_peak
        self.rdma_peak = rdma_peak
        self.calls = []
        self._names = [
            "Driver",
            "GPU[0].SA[0].CU[0]",
            "GPU[0].SA[0].L1VROB[0]",
            "GPU[0].SA[0].L1VAddrTrans[0]",
            "GPU[0].SA[0].L1VCache[0]",
            "GPU[0].RDMA",
        ]

    # -- monitoring views -------------------------------------------------
    def overview(self):
        self.calls.append("overview")
        return {"now": 1e-6, "run_state": "running"}

    def progress(self):
        self.calls.append("progress")
        return [{"name": "kernel:im2col", "completed": 1, "ongoing": 2,
                 "not_started": 13, "total": 16}]

    def components(self):
        self.calls.append("components")
        return list(self._names)

    def component(self, name):
        self.calls.append(f"component:{name}")
        if name not in self._names:
            raise KeyError(name)
        fields = {"transactions": 0}
        if "L1VCache" in name:
            fields["mshr"] = {"__kind__": "object", "type": "MSHR",
                              "fields": {"capacity": 16}}
        return {"name": name, "type": "X", "fields": fields,
                "watchable": ["size", "transactions"], "ticking": True}

    def buffers(self, sort="percent", top=50):
        self.calls.append("buffers")
        if not self.rob_pinned:
            return []
        return [{"buffer": "GPU[0].SA[0].L1VROB[0].TopPort.Buf",
                 "size": 8, "capacity": 8, "percent": 1.0}]

    def value(self, component, path):
        self.calls.append(f"value:{component}.{path}")
        if "L1VCache" in component:
            return float(self.l1_peak)
        if "RDMA" in component:
            return float(self.rdma_peak)
        return 3.0

    def watch(self, component, path):
        self.calls.append(f"watch:{component}.{path}")
        return 1

    def watches(self):
        self.calls.append("watches")
        return []

    def profile_start(self):
        self.calls.append("profile_start")

    def profile_stop(self):
        self.calls.append("profile_stop")

    def profile(self, top=15):
        self.calls.append("profile")
        return {"functions": [], "edges": [], "samples": 0}


def _agent(code, client):
    profile = next(p for p in PARTICIPANTS if p.code == code)
    return ParticipantAgent(profile, client, think_time=0.0)


def test_deep_agent_finds_all_three_bottlenecks():
    client = FakeClient()
    findings = _agent("PT3", client).find_bottlenecks()
    assert findings.bottlenecks == {"ROB", "L1", "RDMA"}
    assert findings.success


def test_medium_agent_stops_at_the_rob():
    client = FakeClient()
    findings = _agent("PT2", client).find_bottlenecks()
    assert findings.bottlenecks == {"ROB"}
    assert not findings.success


def test_shallow_agent_browses_but_concludes_nothing():
    client = FakeClient()
    findings = _agent("PT1", client).find_bottlenecks()
    assert findings.bottlenecks == set()
    assert any("learning" in obs for obs in findings.observations)


def test_deep_agent_without_congestion_finds_nothing():
    client = FakeClient(rob_pinned=False)
    findings = _agent("PT3", client).find_bottlenecks()
    assert findings.bottlenecks == set()


def test_l1_below_capacity_not_flagged():
    client = FakeClient(l1_peak=9)
    findings = _agent("PT3", client).find_bottlenecks()
    assert "L1" not in findings.bottlenecks
    assert "RDMA" in findings.bottlenecks


def test_quiet_rdma_not_flagged():
    client = FakeClient(rdma_peak=12)
    findings = _agent("PT3", client).find_bottlenecks()
    assert "RDMA" not in findings.bottlenecks


def test_analyzer_refresh_count_scales_with_depth():
    deep, shallow = FakeClient(), FakeClient()
    _agent("PT3", deep).find_bottlenecks()
    _agent("PT1", shallow).find_bottlenecks()
    assert deep.calls.count("buffers") > shallow.calls.count("buffers")


def test_profiler_gated_on_prior_experience():
    experienced, novice = FakeClient(), FakeClient()
    findings = Findings()
    _agent("PT2", experienced).maybe_profile(findings)
    assert findings.feature_usage.get("profiler") == 1
    findings2 = Findings()
    _agent("PT4", novice).maybe_profile(findings2)
    assert "profiler" not in findings2.feature_usage
    assert novice.calls == []


def test_explore_visits_tree_and_details():
    client = FakeClient()
    findings = _agent("PT5", client).explore()
    assert findings.feature_usage["component_tree"] == 1
    assert findings.feature_usage["component_detail"] >= 2
