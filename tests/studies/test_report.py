"""Tests for study report formatting."""

from repro.studies.participants import PARTICIPANTS, Findings
from repro.studies.session import SessionResult, StudyResult
from repro.studies.survey import SurveyTable, respond


def _fabricated_study() -> StudyResult:
    sessions = []
    for profile in PARTICIPANTS:
        findings = Findings()
        if profile.code in ("PT3", "PT4", "PT5"):
            findings.bottlenecks = {"ROB", "RDMA"}
            findings.observations.append("found the network bottleneck")
        if profile.prior_experience:
            findings.used("profiler")
        findings.used("bottleneck_analyzer")
        sessions.append(SessionResult(
            profile, Findings(), findings,
            respond(profile, findings), themes=["companion"]))
    table = SurveyTable.from_responses([s.responses for s in sessions])
    return StudyResult(sessions, table)


def test_report_contains_all_sections():
    report = _fabricated_study().format_report()
    assert "# User study report" in report
    assert "## Sessions" in report
    assert "## Feature usage" in report
    assert "## Survey" in report
    for code in ("PT1", "PT2", "PT3", "PT4", "PT5", "PT6"):
        assert code in report


def test_report_marks_success_and_failure():
    report = _fabricated_study().format_report()
    assert "SUCCESS" in report
    assert "did not complete" in report
    assert "found the network bottleneck" in report


def test_report_states_figure6_verdict():
    report = _fabricated_study().format_report()
    assert "Matches the paper's Figure 6: True" in report


def test_report_orders_features_by_usage():
    report = _fabricated_study().format_report()
    usage_section = report.split("## Feature usage")[1]
    analyzer_pos = usage_section.find("bottleneck_analyzer")
    profiler_pos = usage_section.find("profiler")
    assert 0 <= analyzer_pos < profiler_pos
