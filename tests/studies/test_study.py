"""Tests for the simulated user study (Figure 6 reproduction)."""

import pytest

from repro.studies import (
    PAPER_FIGURE6,
    PARTICIPANTS,
    STATEMENTS,
    Findings,
    SurveyTable,
    respond,
    run_session,
)
from repro.studies.participants import Profile
from repro.studies.session import problem_platform_config, problem_workload


# -------------------------------------------------------------- profiles
def test_six_participants_with_paper_profiles():
    assert [p.code for p in PARTICIPANTS] == [f"PT{i}" for i in range(1, 7)]
    phds = {p.code for p in PARTICIPANTS if p.level == "phd"}
    assert phds == {"PT2", "PT3", "PT4"}
    prior = {p.code for p in PARTICIPANTS if p.prior_experience}
    assert prior == {"PT2", "PT3", "PT5", "PT6"}


# -------------------------------------------------------------- findings
def test_success_criterion_requires_rob_and_rdma():
    f = Findings()
    assert not f.success
    f.bottlenecks.add("ROB")
    assert not f.success
    f.bottlenecks.add("RDMA")
    assert f.success


def test_feature_usage_counting():
    f = Findings()
    f.used("x")
    f.used("x")
    f.used("y")
    assert f.feature_usage == {"x": 2, "y": 1}


# -------------------------------------------------------------- survey model
def _findings_for(code: str) -> Findings:
    """The part-3 outcomes the paper reports for each participant."""
    f = Findings()
    if code in ("PT3", "PT4", "PT5"):
        f.bottlenecks = {"ROB", "RDMA"}
    profile = next(p for p in PARTICIPANTS if p.code == code)
    if profile.prior_experience:
        f.used("profiler")
    return f


def test_survey_model_regenerates_figure6():
    responses = [respond(p, _findings_for(p.code)) for p in PARTICIPANTS]
    table = SurveyTable.from_responses(responses)
    assert table.matches(PAPER_FIGURE6)


def test_figure6_statistics_match_paper():
    table = SurveyTable(PAPER_FIGURE6)
    assert table.grand_mean == pytest.approx(4.5, abs=0.05)
    means = [table.mean(q) for q in range(6)]
    assert means.index(max(means)) == 3   # Q4 highest (4.8)
    assert means.index(min(means)) == 5   # Q6 lowest (4.2)
    assert table.mean(3) == pytest.approx(4.83, abs=0.01)
    assert table.mean(5) == pytest.approx(4.17, abs=0.01)


def test_every_row_sums_to_six():
    for row in PAPER_FIGURE6:
        assert sum(row.values()) == 6


def test_survey_format_renders():
    table = SurveyTable(PAPER_FIGURE6)
    text = table.format()
    for statement in STATEMENTS:
        assert statement in text
    assert "grand mean: 4.50" in text


def test_all_responses_positive_or_single_disagree():
    responses = [respond(p, _findings_for(p.code)) for p in PARTICIPANTS]
    flat = [score for row in responses for score in row]
    assert min(flat) == 2          # the one 'disagree' on Q6
    assert flat.count(2) == 1
    assert 1 not in flat           # never 'strongly disagree'


# -------------------------------------------------------------- config
def test_problem_platform_is_network_bound():
    cfg = problem_platform_config()
    assert cfg.num_chiplets == 4
    assert cfg.net_msgs_per_cycle == 1
    assert cfg.net_link_latency_cycles >= 20


def test_problem_workload_is_paper_shaped():
    wl = problem_workload()
    assert (wl.image_width, wl.image_height, wl.channels) == (24, 24, 6)


# -------------------------------------------------------------- live sessions
@pytest.mark.slow
def test_deep_participant_session_succeeds():
    """PT3's full session against live simulations."""
    pt3 = next(p for p in PARTICIPANTS if p.code == "PT3")
    result = run_session(pt3, think_time=0.01)
    assert result.success
    assert {"ROB", "RDMA"} <= result.findings.bottlenecks
    assert result.findings.feature_usage["bottleneck_analyzer"] >= 2
    assert "different perspective" in result.themes
    assert result.responses == [5, 5, 5, 5, 5, 5]


@pytest.mark.slow
def test_shallow_participant_learns_but_does_not_succeed():
    pt1 = next(p for p in PARTICIPANTS if p.code == "PT1")
    result = run_session(pt1, think_time=0.01)
    assert not result.success
    assert "learning tool" in result.themes
    assert "needs guidance for new users" in result.themes
    assert result.responses == [4, 4, 3, 4, 3, 3]
