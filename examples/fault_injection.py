#!/usr/bin/env python3
"""Fault injection & supervision — proving the diagnostics on demand.

Case study 2 in the paper took a real, organically-arising bug to show
AkitaRTM pinpointing a hang.  This example manufactures that class of
failure deterministically: a scripted campaign stalls every write
buffer mid-run, then checks that the monitor reaches the right verdict
— the hang heuristic fires, the bottleneck table fingers the stalled
write-buffer intake, and the watchdog (an automated stand-in for the
human at the dashboard) snapshots diagnostics, attempts a bounded
tick-based recovery, and aborts cleanly with a structured post-mortem.

A second, benign scenario (extra network latency) shows the other side:
faults that merely slow the run must NOT trip the hang machinery.

Run:  python examples/fault_injection.py [snapshot_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.core.watchdog import WatchdogConfig
from repro.faults import CampaignRunner, slow_network, write_buffer_stall
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


def main() -> None:
    snapshot_dir = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else Path(tempfile.mkdtemp(prefix="akitartm-postmortem-"))

    runner = CampaignRunner(
        platform_factory=lambda: GPUPlatform(
            GPUPlatformConfig.small(num_chiplets=2)),
        workload_factory=lambda: FIR(num_samples=4096),
        wall_timeout=60.0,
        stall_threshold=0.5,
        watchdog_config=WatchdogConfig(check_interval=0.1,
                                       max_tick_retries=2,
                                       retry_wait=0.2,
                                       snapshot_dir=str(snapshot_dir)))

    print("=== scenario 1: the case-study-2 hang class, on demand ===")
    result = runner.run(write_buffer_stall(hang_within=30.0))
    print(result.summary())

    report = result.watchdog_report or {}
    print(f"\nwatchdog verdict: {report.get('verdict')} after "
          f"{report.get('recovery_attempts')} tick retries")
    for row in report.get("stuck_buffers", [])[:5]:
        print(f"  stalled buffer: {row['buffer']} "
              f"({row['size']}/{row['capacity']})")
    print(f"  suspects: {', '.join(report.get('suspects', [])[:4])}")
    print(f"  post-mortem on disk: {report.get('postmortem_path')}")

    print("\n=== scenario 2: benign fault — slower, but no hang ===")
    benign = runner.run(slow_network(delay_cycles=20))
    print(benign.summary())

    both = result.passed and benign.passed
    print(f"\ncampaign verdict: "
          f"{'ALL PASS' if both else 'FAILURES'} — the monitor's "
          f"diagnostics hold against induced failures")


if __name__ == "__main__":
    main()
