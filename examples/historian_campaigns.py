#!/usr/bin/env python3
"""Two fleet campaigns recorded into one historian database, compared.

The live dashboard answers "what is this run doing right now"; the
historian answers the questions that outlive the process: which jobs
did last night's campaign run, what did the watchdog conclude about
the one that stalled, and did today's campaign regress any metric
family against yesterday's?

This example runs two small FIR campaigns back to back into one
SQLite historian:

* ``baseline`` — two clean jobs;
* ``candidate`` — the same jobs plus a third, with the first job's
  opening attempt sabotaged by a write-buffer stall fault, and a
  threshold alert rule (``rtm_fleet_job_retries_total >= 1``) armed
  over the gateway's federated metrics.

Then it asks the store the post-hoc questions: campaign inventory,
the candidate's watchdog post-mortem, the deduplicated alert
transitions, and a family-by-family metric comparison.

Run:  python examples/historian_campaigns.py
"""

import tempfile
from pathlib import Path

from repro.fleet import FleetGateway, FleetManager, JobQueue, JobSpec
from repro.historian import Historian, HistorianService, MetricRule


def run_campaign(historian, campaign_id, specs, rules=()):
    queue = JobQueue()
    queue.submit_all(specs)
    manager = FleetManager(queue, num_workers=2)
    gateway = FleetGateway(manager)
    service = HistorianService(historian, campaign_id=campaign_id,
                               manager=manager, interval=0.2,
                               rules=rules)
    service.bind_gateway(gateway)
    gateway.start()
    manager.start()
    service.start()
    try:
        drained = manager.wait(timeout=300.0)
    finally:
        manager.stop()
        service.stop()
        gateway.stop()
    print(f"campaign {campaign_id}: "
          f"{'drained' if drained else 'TIMED OUT'}")


def main() -> None:
    db = Path(tempfile.mkdtemp(prefix="rtm-historian-")) / "campaigns.db"
    historian = Historian(db)

    base = [JobSpec(f"fir-c{c}", "fir", chiplets=c, max_retries=1)
            for c in (1, 2)]
    run_campaign(historian, "baseline", base)

    candidate = [JobSpec(f"fir-c{c}", "fir", chiplets=c, max_retries=1)
                 for c in (1, 2, 3)]
    candidate[0].fault = {"kind": "stall", "target": "*WriteBuffer*",
                          "start": 5e-7}
    # The rule fires the moment the restart policy requeues the
    # sabotaged job — and only once, however many samples then see
    # the counter still at 1 (the dedup discipline).
    rule = MetricRule("rtm_fleet_job_retries_total", op=">=",
                      threshold=1)
    run_campaign(historian, "candidate", candidate, rules=[rule])

    # ---- the post-hoc questions ------------------------------------
    for campaign in historian.campaigns():
        records = campaign["records"]
        print(f"campaign {campaign['campaign_id']}: "
              f"{records.get('job', 0)} jobs, "
              f"{records.get('snapshot', 0)} snapshots, "
              f"{records.get('postmortem', 0)} post-mortems, "
              f"{records.get('alert', 0)} alert transitions")

    for record in historian.postmortems("candidate"):
        payload = record["payload"]
        watchdog = payload.get("watchdog") or {}
        report = watchdog.get("report") or watchdog
        print(f"post-mortem {record['name']}: "
              f"verdict={report.get('verdict')}")

    for record in historian.alerts("candidate"):
        payload = record["payload"]
        print(f"alert transition: {payload['name']} -> "
              f"{payload['state']}")

    report = historian.compare("baseline", "candidate")
    jobs_a = [j["job_id"] for j in report["a"]["jobs"]]
    jobs_b = [j["job_id"] for j in report["b"]["jobs"]]
    print(f"compare baseline ({', '.join(jobs_a)}) vs "
          f"candidate ({', '.join(jobs_b)})")
    moved = sorted(
        ((name, entry) for name, entry in report["families"].items()
         if entry.get("delta")),
        key=lambda item: -abs(item[1]["delta"]))
    for name, entry in moved[:5]:
        print(f"  {name}: {entry['a']:g} -> {entry['b']:g} "
              f"(delta {entry['delta']:+g})")
    print(f"families only in candidate: "
          f"{len(report['only_b'])}; only in baseline: "
          f"{len(report['only_a'])}")
    historian.close()
    print(f"historian database: {db}")


if __name__ == "__main__":
    main()
