#!/usr/bin/env python3
"""Scrape a live run's /metrics and print the Figure-7 breakdown.

The metrics registry prices every hook position while the simulation
runs (`rtm_hook_callback_seconds_total{position=...}`), so monitoring
overhead is a quantity you *scrape from the run itself* rather than
measure by differencing wall clocks across repeated runs.  This script
runs the 2-chiplet StoreStorm write workload, scrapes the registry
mid-flight and again at the end, and prints the per-position cost
table (see EXPERIMENTS.md, "Figure 7 from /metrics alone").

Run:  python examples/metrics_scrape.py
"""

import threading
import time

from repro.core import Monitor, RTMClient
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads.storestorm import StoreStorm


def sample_value(family, labels=None):
    for s in family.get("samples", []):
        if labels is None or all(s["labels"].get(k) == v
                                 for k, v in labels.items()):
            return s["value"]
    return 0.0


def print_breakdown(snapshot) -> None:
    calls = snapshot.get("rtm_hook_callbacks_total", {})
    secs = snapshot.get("rtm_hook_callback_seconds_total", {})
    wall = sample_value(snapshot.get(
        "rtm_engine_event_wall_seconds_total", {}))
    print(f"  {'position':<16s} {'callbacks':>12s} {'seconds':>10s} "
          f"{'ns/call':>9s}")
    total = 0.0
    for s in calls.get("samples", []):
        pos = s["labels"].get("position", "?")
        n = s["value"]
        if not n:
            continue
        t = sample_value(secs, {"position": pos})
        total += t
        per = (t / n * 1e9) if n else 0.0
        print(f"  {pos:<16s} {n:>12,.0f} {t:>10.4f} {per:>9.0f}")
    if wall:
        print(f"  overhead fraction: {total / wall:.1%} of "
              f"{wall:.3f}s event wall time (sampled; single-digit-%"
              " differences are noise)")


def main() -> None:
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    StoreStorm().enqueue(platform.driver)
    url = monitor.start_server()
    client = RTMClient(url)
    client.metrics_start()  # attach before the run so hooks see it all

    sim = threading.Thread(target=platform.run)
    sim.start()

    time.sleep(0.3)
    print("mid-run scrape:")
    print_breakdown(client.metrics_snapshot())

    sim.join()
    print("\nfinal scrape:")
    snapshot = client.metrics_snapshot()
    print_breakdown(snapshot)
    events = sample_value(snapshot["rtm_engine_events_total"])
    print(f"\nrun complete: {events:,.0f} events, "
          f"t = {sample_value(snapshot['rtm_engine_sim_time_seconds']):.6f}s"
          " simulated")
    monitor.stop_server()


if __name__ == "__main__":
    main()
