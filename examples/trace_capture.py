#!/usr/bin/env python3
"""Trace capture — following a dropped message to the scene of a hang.

A fault campaign can tell you THAT losing RDMA traffic wedges the run;
the tracer tells you WHICH message was lost and what it was doing when
it died.  This example runs FIR on a two-chiplet GPU with the tracer
attached, drops a fraction of inter-chiplet RDMA traffic mid-run, and
— once the simulation wedges — reconstructs the lifecycle of one
dropped message from the ring buffer: the send, the hops it completed,
and the drop that stranded its requester.

The same ring buffer feeds the watchdog's post-mortem (its last-N
``trace_window``), so what this script prints is exactly the evidence
an unattended CI run would have persisted.

Run:  python examples/trace_capture.py [out.jsonl]
"""

import sys

from repro.core import Monitor
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.trace import TraceKind, write_jsonl
from repro.workloads import FIR


def main() -> None:
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    FIR(num_samples=2048).enqueue(platform.driver)

    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)

    # Always-on tracing: one ring, hooks attached, nothing else pays.
    tracer = monitor.ensure_tracer(capacity=1 << 18)
    tracer.start()

    # The campaign fault: lose 2% of RDMA traffic after 100ns.
    injector = monitor.ensure_injector(seed=7)
    injector.drop_messages("*RDMA*", probability=0.02, start=1e-7)

    ok = platform.run(hang_wait=0.0)
    state = "completed" if ok else platform.simulation.run_state
    stats = tracer.store.stats()
    print(f"run {state} at t={platform.simulation.now * 1e6:.2f}us "
          f"with {stats['recorded']:,} trace events recorded")

    drops = tracer.query(kind=TraceKind.DROP, limit=0)
    print(f"messages dropped in transit: {len(drops)}")
    if not drops:
        print("no drops recorded — raise the probability and retry")
        return

    victim = drops[0]
    print(f"\nfirst dropped message: {victim.msg_type}#{victim.msg_id} "
          f"({victim.src} -> {victim.dst}) "
          f"at t={victim.time * 1e9:.2f}ns")
    print("reconstructed path:")
    for line in tracer.path(victim.msg_id):
        print(f"  {line}")

    if len(sys.argv) > 1:
        write_jsonl(tracer.query(limit=0), sys.argv[1])
        print(f"\nfull trace written to {sys.argv[1]}")


if __name__ == "__main__":
    main()
