#!/usr/bin/env python3
"""Case study 1 (paper §V-A): performance analysis of im2col.

Reproduces the paper's diagnostic walk on a 4-chiplet MCM GPU running
the Image-to-Column workload, step by step:

1. confirm the simulation is progressing (progress bar + timer),
2. repeatedly refresh the bottleneck analyzer → the L1VROB top-port
   buffers are consistently 8/8,
3. time-chart the ROB's own transaction count → fluctuates below
   capacity, so the ROB is not the limiter,
4. chart the address translator → bursts that drain (healthy),
5. chart the L1 cache → pinned at its MSHR capacity (16),
6. chart the RDMA engine → a large pile of in-flight transactions
   ⇒ the inter-chiplet network is the root cause.

Run:  python examples/case_study_im2col.py
"""

import threading
import time

from repro.core import Monitor, RTMClient
from repro.studies.session import problem_platform_config, problem_workload
from repro.gpu import GPUPlatform


def spark(points, width=60):
    """Render a value series as a one-line ASCII sparkline."""
    if not points:
        return "(no data)"
    values = [v for _, v in points][-width:]
    top = max(max(values), 1.0)
    blocks = "▁▂▃▄▅▆▇█"
    return "".join(blocks[min(len(blocks) - 1,
                              int(v / top * (len(blocks) - 1)))]
                   for v in values) + f"  (min {min(values):.0f}, " \
                                      f"max {max(values):.0f})"


def main() -> None:
    print("=== Case study 1: im2col on a 4-chiplet MCM GPU ===\n")
    platform = GPUPlatform(problem_platform_config())
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    print(f"dashboard: {url}\n")

    problem_workload().enqueue(platform.driver)
    sim = threading.Thread(target=platform.run, daemon=True)
    sim.start()
    client = RTMClient(url)

    # Step 1: initial assessment — the simulation is progressing.
    print("[1] Initial assessment")
    t_prev = -1.0
    while True:
        bars = client.progress()
        kernel = next((b for b in bars if b["name"].startswith("kernel")),
                      None)
        t_now = client.overview()["now"]
        if kernel and kernel["completed"] + kernel["ongoing"] > 0 \
                and t_now > t_prev > 0:
            print(f"    timer advancing ({t_now * 1e9:.0f} ns) and "
                  f"progress moving "
                  f"({kernel['completed']}/{kernel['ongoing']}/"
                  f"{kernel['not_started']}) -> simulation is healthy\n")
            break
        t_prev = t_now
        time.sleep(0.2)

    # Step 2: bottleneck analyzer, repeatedly refreshed.
    print("[2] Bottleneck analyzer (refreshed 8 times)")
    rob_top_hits = 0
    example_row = None
    for _ in range(8):
        rows = client.buffers(sort="percent", top=8)
        pinned = [r for r in rows if "L1VROB" in r["buffer"]
                  and r["percent"] >= 1.0]
        if pinned:
            rob_top_hits += 1
            example_row = pinned[0]
        time.sleep(0.1)
    print(f"    L1VROB top-port at 8/8 in {rob_top_hits}/8 refreshes, "
          f"e.g. {example_row['buffer']}")
    print("    -> the ROBs are not draining fast enough; "
          "investigate below\n")

    rob = example_row["buffer"].rsplit(".", 2)[0]
    sa = rob.rsplit(".", 1)[0]
    gpu = sa.split(".")[0]
    names = client.components()
    at = next(n for n in names if n.startswith(sa) and "L1VAddrTrans" in n)
    l1 = next(n for n in names if n.startswith(sa) and "L1VCache" in n)
    rdma = f"{gpu}.RDMA"

    # Steps 3-6: time charts of the suspects (the flag-icon workflow).
    print("[3-6] Value monitoring (2s windows each)")
    for label, component, path, verdict in [
        ("ROB top-port buffer", rob, "top_port.buf",
         "constantly full -> bottleneck is below the ROB"),
        ("ROB transactions", rob, "size",
         "fluctuates below capacity -> ROB size is NOT the limit"),
        ("addr-translator transactions", at, "transactions",
         "spikes that drain -> translator is healthy"),
        ("L1 transactions", l1, "transactions",
         "pinned at MSHR capacity (16) -> L1 is resource-limited"),
        ("RDMA transactions", rdma, "transactions",
         "large and sustained -> the network is the root cause"),
    ]:
        points = client.sample_value(component, path, duration=1.2,
                                     interval=0.03)
        print(f"    {label:32s} {spark(points)}")
        print(f"    {'':32s} -> {verdict}")
    print()

    print("[conclusion] The RDMA engines hold the in-flight transactions "
          "gathered from all L1s;\n the slow inter-chiplet network is the "
          "performance bottleneck — matching the paper's finding.")

    platform.simulation.abort()
    sim.join(timeout=30)
    monitor.stop_server()


if __name__ == "__main__":
    main()
