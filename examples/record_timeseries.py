#!/usr/bin/env python3
"""Record monitored values to CSV/JSON for post-hoc analysis.

§IV-C: real-time monitoring narrows the haystack; this example shows
the hand-off — recording the five Figure 5 series from a live congested
simulation and exporting them for offline tooling (pandas, gnuplot, …).

Run:  python examples/record_timeseries.py [output_dir]
"""

import pathlib
import sys
import threading

from repro.core import Monitor, RTMClient, SeriesRecorder
from repro.gpu import GPUPlatform
from repro.studies.session import problem_platform_config, problem_workload


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 \
        else pathlib.Path(".")

    platform = GPUPlatform(problem_platform_config())
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    problem_workload().enqueue(platform.driver)
    url = monitor.start_server()
    print(f"dashboard: {url}")

    sim = threading.Thread(target=platform.run, daemon=True)
    sim.start()
    client = RTMClient(url)

    # Wait for congestion, then record the Figure 5 values.
    import time
    while not any(r["percent"] >= 1.0
                  for r in client.buffers(top=3)):
        time.sleep(0.05)
    chiplet = platform.chiplets[1]
    targets = [
        (chiplet.robs[0].name, "top_port.buf"),
        (chiplet.robs[0].name, "size"),
        (chiplet.ats[0].name, "transactions"),
        (chiplet.l1s[0].name, "transactions"),
        (chiplet.rdma.name, "transactions"),
    ]
    recorder = SeriesRecorder(client, targets, interval=0.02)
    print("recording 3 seconds of the congested phase...")
    recorder.record_for(3.0)

    csv_path = recorder.to_csv(out_dir / "figure5_series.csv")
    json_path = recorder.to_json(out_dir / "figure5_series.json")
    for series in recorder.series:
        values = [v for _, v in series.points if v is not None]
        if values:
            print(f"  {series.label:44s} {len(values):4d} samples, "
                  f"min {min(values):6.0f}  max {max(values):6.0f}")
    print(f"wrote {csv_path} and {json_path}")

    platform.simulation.abort()
    sim.join(timeout=30)
    monitor.stop_server()


if __name__ == "__main__":
    main()
