#!/usr/bin/env python3
"""Fail early, fail fast — automated early termination with alerts.

The paper's core motivation: researchers waste days waiting on
simulations that a human watching the dashboard would have killed in
minutes.  Alert rules automate that watching.  This example arms two
rules on the bug-enabled platform of case study 2:

1. a *notify* rule on the L2's top-port buffer (the early congestion
   symptom), and
2. an *abort-on-hang* policy that terminates the run the moment the
   hang heuristic fires —

then launches the deadlocking workload and shows the run being torn
down automatically, with the firing log explaining why.

Run:  python examples/fail_fast.py
"""

import time

from repro.core import Monitor
from repro.gpu import GPUPlatform
from repro.workloads import StoreStorm


def main() -> None:
    platform = GPUPlatform(StoreStorm.trigger_config(buggy=True))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    monitor.sample_interval = 0.02

    l2 = platform.chiplets[0].l2s[0]
    rule = monitor.add_alert(l2.name, "top_port.buf", ">=",
                             l2.top_port.buf.capacity, duration=0.05,
                             action="notify")
    monitor.abort_on_hang()
    monitor.start_sampler()
    print(f"armed: {rule.label} (notify after 50ms sustained)")
    print("armed: abort-on-hang policy")

    StoreStorm().enqueue(platform.driver)
    print("\nlaunching the deadlocking workload "
          "(no human is watching)...")
    start = time.monotonic()
    completed = platform.run(hang_wait=600.0)  # would wait 10 minutes
    elapsed = time.monotonic() - start

    time.sleep(0.2)  # let the sampler finish its in-flight pass
    monitor.stop_sampler()

    print(f"\nrun ended after {elapsed:.1f}s wall "
          f"(instead of blocking for 600s): "
          f"completed={completed}, state={platform.simulation.run_state}")
    for fired in monitor.alerts.fired_log:
        print(f"  fired: {fired.label} at sim "
              f"t={fired.fired_at_sim_time * 1e9:.0f} ns "
              f"(action: {fired.action})")
    stuck = monitor.analyzer.non_empty()
    print(f"  post-mortem: {len(stuck)} buffers still holding content "
          f"(the hang's footprint)")
    monitor.stop_server()


if __name__ == "__main__":
    main()
