#!/usr/bin/env python3
"""Monitoring a *non-GPU* simulator (paper §IV-B, Figure 1).

AkitaRTM's API is simulator-agnostic: anything built from components,
ports and buffers can be registered.  This example builds the paper's
Figure 4 pedagogical system — a four-stage chain A → B → C → D where C
is deliberately slow — registers it with the monitor, and shows the
bottleneck analyzer pointing straight at C's input buffer.

It also demonstrates the manual progress-bar API (the paper's
"number of algorithm iterations" use case).

Run:  python examples/custom_simulator.py
"""

import threading
import time

from repro.akita import (
    DirectConnection,
    Msg,
    Simulation,
    TickingComponent,
)
from repro.core import Monitor, RTMClient


class Producer(TickingComponent):
    """Stage A: emits bursts of 4 requests every 40 ns.

    The long-run rate (0.1 req/ns) matches slow C's service rate, so B
    and D drain between bursts while C's buffer stays full — giving the
    paper's Figure 4 snapshot where *only* the bottleneck's input buffer
    is occupied."""

    def __init__(self, name, engine, downstream, total):
        super().__init__(name, engine)
        self.out = self.add_port("Out", 4)
        self.downstream = downstream
        self.remaining = total
        self._burst_left = 4

    def tick(self):
        if self.remaining == 0:
            return False
        if self._burst_left == 0:
            self._burst_left = 4
            self.tick_at(self.engine.now + 40e-9)  # rest until next burst
            return False
        if self.out.send(Msg(dst=self.downstream)):
            self.remaining -= 1
            self._burst_left -= 1
            return True
        return False


class Stage(TickingComponent):
    """Stages B/C/D: forward each request after `service_cycles`."""

    def __init__(self, name, engine, service_cycles, buf_capacity=4):
        super().__init__(name, engine, freq=1e9 / service_cycles)
        self.inp = self.add_port("In", buf_capacity)
        self.out = self.add_port("Out", 4)
        self.downstream = None
        self.processed = 0

    def tick(self):
        if self.downstream is None:  # final stage: sink
            if self.inp.retrieve_incoming() is not None:
                self.processed += 1
                return True
            return False
        msg = self.inp.peek_incoming()
        if msg is None:
            return False
        if self.out.send(Msg(dst=self.downstream)):
            self.inp.retrieve_incoming()
            self.processed += 1
            return True
        return False


def main() -> None:
    print("=== Figure 4: buffer fullness finds the slow stage ===\n")
    sim = Simulation("chain")
    engine = sim.engine

    total = 50_000
    d = Stage("D", engine, service_cycles=2)
    c = Stage("C", engine, service_cycles=10)   # the deliberate bottleneck
    b = Stage("B", engine, service_cycles=2)
    a = Producer("A", engine, b.inp, total=total)
    b.downstream, c.downstream = c.inp, d.inp

    for src, dst, name in [(a.out, b.inp, "AB"), (b.out, c.inp, "BC"),
                           (c.out, d.inp, "CD")]:
        conn = DirectConnection(name, engine, latency=1e-9)
        conn.plug_in(src)
        conn.plug_in(dst)
        sim.register_connection(conn)
    for component in (a, b, c, d):
        sim.register_component(component)
    sim.set_completion_check(lambda: d.processed >= total)

    # Plug in the monitor exactly as a custom simulator would: either
    # per-component (the paper's RegisterComponent)...
    monitor = Monitor()
    monitor.register_engine(engine)
    for component in (a, b, c, d):
        monitor.register_component(component)
    # ...or wholesale, which additionally wires hang detection:
    monitor.register_simulation(sim)
    url = monitor.start_server()
    print(f"dashboard: {url}\n")

    # A manual progress bar driven by the application.
    bar = monitor.create_progress_bar(
        "requests", provider=lambda: (d.processed,
                                      c.processed - d.processed, total))

    a.tick_later()
    thread = threading.Thread(target=sim.run, daemon=True)
    thread.start()
    client = RTMClient(url)

    # Wait until the bottleneck's buffer saturates, then PAUSE the
    # simulation (Figure 2 C) so the snapshot is taken at a consistent
    # event boundary.
    while monitor.component("C").inp.buf.size < 4 and thread.is_alive():
        time.sleep(0.005)
    client.pause()
    print("bottleneck analyzer (simulation paused for inspection):")
    for row in client.buffers(sort="percent", top=4):
        marker = "  <-- the slow component's input" \
            if row["buffer"].startswith("C.") else ""
        print(f"    {row['buffer']:12s} {row['size']}/{row['capacity']}"
              f"{marker}")
    completed, ongoing, total = bar.counts
    print(f"\nprogress bar: {completed} done / {ongoing} in flight "
          f"/ {total - completed - ongoing} pending")
    client.continue_()

    thread.join(timeout=120)
    print(f"\nchain drained: D processed {d.processed} requests "
          f"in {sim.now * 1e6:.1f} us simulated")
    monitor.stop_server()


if __name__ == "__main__":
    main()
