#!/usr/bin/env python3
"""Quickstart: monitor a GPU simulation with AkitaRTM in ~20 lines.

Builds a small multi-chiplet GPU, attaches the monitor, runs the FIR
benchmark, and polls the monitoring API while the simulation runs —
exactly what the web dashboard does, but from Python.

Run:  python examples/quickstart.py
Then open the printed URL in a browser to watch the dashboard live.
"""

import threading
import time

from repro.core import Monitor
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


def main() -> None:
    # 1. Build the simulated hardware: 2 chiplets, small config.
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))

    # 2. Attach AkitaRTM: one call registers the engine and every
    #    component; attach_driver adds the default progress bars.
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    print(f"AkitaRTM dashboard: {url}")

    # 3. Enqueue a workload and run the simulation in its own thread
    #    (the monitor serves requests from server threads in parallel).
    FIR(num_samples=65536).enqueue(platform.driver)
    sim_thread = threading.Thread(target=platform.run)
    sim_thread.start()

    # 4. Watch it run.
    while sim_thread.is_alive():
        overview = monitor.overview()
        bars = {b.name: f"{b.completed}/{b.total}"
                for b in monitor.progress_bars()}
        resources = monitor.resources.sample()
        print(f"t={overview['now'] * 1e6:8.2f}us "
              f"state={overview['run_state']:9s} "
              f"events={overview['event_count']:>9,} "
              f"cpu={resources.cpu_percent:5.1f}% "
              f"progress={bars}")
        time.sleep(0.5)
    sim_thread.join()

    print(f"\nDone: {platform.simulation.run_state} "
          f"at t={platform.simulation.now * 1e6:.2f}us")
    monitor.stop_server()


if __name__ == "__main__":
    main()
