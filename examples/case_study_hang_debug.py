#!/usr/bin/env python3
"""Case study 2 (paper §V-B): debugging a simulator hang.

Runs a store-heavy workload on a platform whose L2 write buffer carries
the real MGPUSim deadlock bug, then walks the paper's debugging recipe:

1. confirm the hang — progress bars frozen, simulation time frozen,
   CPU usage far below 100%;
2. open the bottleneck analyzer — non-empty buffers mark the components
   that cannot make progress (L1 caches, L2, write buffer, DRAM);
3. step the suspect components with the *Tick* button + *Kick Start*
   and read their ``blocked_on`` diagnostics to localize the cycle:
   the L2's local storage and the write buffer are waiting on each
   other;
4. apply the fix (eager eviction + no head-of-line blocking) and show
   the same workload completing.

Run:  python examples/case_study_hang_debug.py
"""

import threading
import time

from repro.core import Monitor, RTMClient
from repro.gpu import GPUPlatform
from repro.workloads import StoreStorm


def run_buggy() -> None:
    print("=== Phase A: the buggy simulator ===\n")
    platform = GPUPlatform(StoreStorm.trigger_config(buggy=True))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    url = monitor.start_server()
    monitor.start_sampler()
    print(f"dashboard: {url}")

    StoreStorm().enqueue(platform.driver)
    # hang_wait keeps the hung process alive for in-place debugging.
    sim = threading.Thread(
        target=lambda: platform.run(hang_wait=60.0), daemon=True)
    sim.start()
    client = RTMClient(url)

    # [1] Watch for the hang signature.
    print("\n[1] Waiting for the hang signature "
          "(frozen time + low CPU)...")
    while True:
        status = client.hang()
        if status["hung"]:
            resources = client.resources()
            print(f"    HANG at t={status['sim_time'] * 1e9:.0f} ns: "
                  f"time frozen {status['stalled_wall_seconds']:.1f}s, "
                  f"cpu={resources['cpu_percent']:.0f}%, "
                  f"run_state={status['run_state']}")
            break
        time.sleep(0.2)

    # [2] Bottleneck analyzer: who is stuck?
    print("\n[2] Non-empty buffers (stuck components):")
    for row in client.buffers(sort="size", top=10):
        print(f"    {row['buffer']:48s} {row['size']}/{row['capacity']}")

    # [3] Tick the suspects and read their diagnostics.
    print("\n[3] Stepping suspect components (Tick + Kick Start):")
    suspects = [n for n in client.components()
                if "L2" in n or "WriteBuffer" in n]
    for name in suspects:
        client.tick(name)       # wake the sleeping component
        client.kickstart()      # resume the dry run loop for one step
        time.sleep(0.1)
        detail = client.component(name)
        blocked = detail["fields"].get("blocked_on")
        if blocked:
            print(f"    {name:28s} blocked on: {blocked}")
    print("\n    -> local storage waits for the write buffer, the write "
          "buffer waits for local storage:\n       a deadlock in the L2 "
          "write-buffer protocol (the bug the paper found and patched).")

    # [4] Optional: the GDB/Delve-style line-step, in code.  The paper
    # sets a breakpoint on Tick and steps; TickStepper is the
    # programmatic equivalent.
    from repro.gpu import TickStepper
    print("\n[4] Stepping the write buffer's Tick under a breakpoint:")
    wb = platform.chiplets[0].write_buffers[0]
    with TickStepper(wb) as stepper:
        record = stepper.step()
        print(f"    tick at t={record.time * 1e9:.0f} ns: "
              f"progress={record.made_progress}, "
              f"buffers moved={record.buffer_deltas or 'none'}")
        print(f"    diagnosis: {stepper.diagnosis()}")

    platform.simulation.abort()
    sim.join(timeout=30)
    monitor.stop_server()


def run_fixed() -> None:
    print("\n=== Phase B: the patched simulator ===\n")
    platform = GPUPlatform(StoreStorm.trigger_config(buggy=False))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    StoreStorm().enqueue(platform.driver)
    completed = platform.run()
    print(f"    same workload, eager-eviction write buffer: "
          f"completed={completed} at t={platform.simulation.now * 1e9:.0f} ns")
    monitor.stop_server()


if __name__ == "__main__":
    run_buggy()
    run_fixed()
