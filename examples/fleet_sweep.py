#!/usr/bin/env python3
"""Drain a chaos-seasoned parameter sweep through the fleet.

One `JobQueue` holds a FIR x chiplet-count grid; the first job's first
attempt is sabotaged with a write-buffer stall fault, so the run
demonstrates the whole orchestration story end to end:

* the `FleetManager` boots a pool of warm persistent workers — each
  subprocess starts its interpreter and RTM server once, then runs a
  stream of jobs over the stdin/stdout control channel, resetting
  simulation state between jobs;
* the sabotaged run hangs, the fleet-tuned watchdog aborts it (the
  worker itself survives and keeps serving), and the restart policy
  requeues the job at the front of the line;
* the retry (fault disarmed from attempt 1 on) completes;
* the `FleetGateway` serves a live `/api/fleet` view, reverse-proxies
  each worker's own dashboard API, and answers one federated /metrics
  scrape in which every job's series carries `worker="wN",job="<id>"`
  labels -- jobs whose worker moved on (or died) federate from the
  control-channel cache of final expositions.

Run:  python examples/fleet_sweep.py
"""

from repro.core import RTMClient
from repro.fleet import FleetGateway, FleetManager, JobQueue, JobSpec


def main() -> None:
    queue = JobQueue()
    specs = [JobSpec(f"fir-c{chiplets}", "fir", chiplets=chiplets,
                     max_retries=1)
             for chiplets in (1, 2, 3)]
    # Sabotage the first job's first attempt: a stall fault pins its
    # write buffers, the watchdog confirms the hang and aborts, and
    # the restart policy proves a clean retry succeeds.
    specs[0].fault = {"kind": "stall", "target": "*WriteBuffer*",
                      "start": 5e-7}
    queue.submit_all(specs)

    manager = FleetManager(queue, num_workers=2)
    gateway = FleetGateway(manager)
    gateway.start()
    manager.start()
    print(f"fleet gateway: {gateway.url}")

    try:
        drained = manager.wait(timeout=300.0)
        client = RTMClient(gateway.url)
        status = client.fleet_status()
        metrics = client.metrics_text()
    finally:
        manager.stop()
        gateway.stop()

    print(f"campaign {'drained' if drained else 'TIMED OUT'}")
    for job in status["jobs"]:
        spec = job["spec"]
        workers = ",".join(job["workers"])
        print(f"  {spec['job_id']}: {job['state']} after "
              f"{job['attempt'] + 1} attempt(s) on {workers}")
        for failure in job["failures"]:
            verdict = (failure["post_mortem"] or {}).get(
                "watchdog") or {}
            print(f"    attempt {failure['attempt']} post-mortem: "
                  f"{failure['error']} "
                  f"(watchdog verdict: {verdict.get('verdict')})")

    labels = sorted({(line.split('worker="', 1)[1].split('"', 1)[0],
                      line.split('job="', 1)[1].split('"', 1)[0])
                     for line in metrics.splitlines()
                     if 'worker="' in line and 'job="' in line})
    print("federated scrape series: "
          + ", ".join(f"{w}/{j}" for w, j in labels))
    summary = status["summary"]
    print(f"summary: {summary['completed']} completed, "
          f"{summary['failed']} failed, {summary['retries']} retries")


if __name__ == "__main__":
    main()
