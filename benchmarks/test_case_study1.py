"""Case study 1 (§V-A): the full expert diagnostic walk, end to end.

A scripted expert performs the paper's analysis over the live HTTP API:
initial health check → repeated analyzer refreshes → ROB time charts →
hierarchy walk (translator, L1, RDMA) → root-cause verdict.  The bench
times the complete walk (the "turnaround" AkitaRTM buys compared to a
post-hoc rerun) and asserts every intermediate conclusion.
"""

import threading
import time

import pytest

from repro.core import Monitor, RTMClient
from repro.gpu import GPUPlatform
from repro.studies.participants import PARTICIPANTS, ParticipantAgent
from repro.studies.session import problem_platform_config, problem_workload


@pytest.fixture(scope="module")
def live_case_study():
    platform = GPUPlatform(problem_platform_config())
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    problem_workload().enqueue(platform.driver)
    thread = threading.Thread(target=platform.run, daemon=True)
    thread.start()
    client = RTMClient(monitor.url or monitor.start_server())
    # Warm up to the congested phase.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        rows = monitor.analyzer.snapshot(top=5)
        kernel_running = any(k.ongoing for k in platform.driver.kernels)
        if kernel_running and any(r.percent >= 1.0 for r in rows):
            break
        time.sleep(0.05)
    yield platform, monitor, client
    platform.simulation.abort()
    thread.join(timeout=30)
    monitor.stop_server()


def test_case_study1_expert_walk(benchmark, live_case_study):
    platform, monitor, client = live_case_study
    benchmark.group = "case-study-1"
    expert = next(p for p in PARTICIPANTS if p.code == "PT3")

    def walk():
        agent = ParticipantAgent(expert, client, think_time=0.01)
        return agent.find_bottlenecks()

    findings = benchmark.pedantic(walk, rounds=1, iterations=1)
    assert "ROB" in findings.bottlenecks
    assert "RDMA" in findings.bottlenecks
    assert findings.success
    observations = " ".join(findings.observations)
    assert "capacity" in observations
    assert "root cause" in observations


def test_case_study1_health_check_first(benchmark, live_case_study):
    """The study's step zero: progress bar + timer confirm liveness."""
    platform, monitor, client = live_case_study
    benchmark.group = "case-study-1"

    def health_check():
        t0 = client.overview()["now"]
        bars = client.progress()
        time.sleep(0.1)
        t1 = client.overview()["now"]
        return t0, t1, bars

    t0, t1, bars = benchmark.pedantic(health_check, rounds=2,
                                      iterations=1)
    assert t1 > t0  # the timer advances
    kernel_bars = [b for b in bars if b["name"].startswith("kernel")]
    assert kernel_bars and kernel_bars[0]["total"] > 0


def test_case_study1_value_monitoring_history(benchmark, live_case_study):
    """The time charts keep at most 300 points (paper §IV-C)."""
    platform, monitor, client = live_case_study
    benchmark.group = "case-study-1"
    name = platform.chiplets[0].robs[0].name
    watch_id = client.watch(name, "size")

    def poll_chart():
        return client.watches()

    for _ in range(5):
        poll_chart()
    watches = benchmark(poll_chart)
    mine = next(w for w in watches if w["id"] == watch_id)
    assert 0 < len(mine["points"]) <= 300
    client.unwatch(watch_id)
