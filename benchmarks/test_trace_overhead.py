"""Tracing overhead: untraced vs ring-traced vs SQLite-traced runs.

The tentpole claim of ``repro.trace`` mirrors AkitaRTM's own (§VII):
instrumentation that is not active must cost nothing.  Three cells,
same workload and platform as a Figure 7 column:

1. ``untraced`` — no tracer constructed; the hook fast paths
   (``if self._hooks``) short-circuit.  Must stay within noise of the
   seed's unmonitored baseline.
2. ``ring``     — tracer attached, every hop and task recorded into
   the bounded in-memory ring.
3. ``sqlite``   — same events flowing into the WAL-journaled,
   batch-inserted SQLite store.

Recording is allowed to cost real time (every port crossing becomes an
object append); what is bounded is the *shape*: traced runs must stay
within sanity multiples of untraced, and untraced must be
indistinguishable from a plain run.

The ring cell's events are exported to ``trace_artifact.jsonl`` so CI
uploads a real trace alongside the timing summary.
"""

from pathlib import Path

import pytest

from repro.trace import RingStore, SQLiteStore, Tracer, write_jsonl
from repro.workloads import FIR

from .conftest import bench_platform

TRACE_MODES = ("untraced", "ring", "sqlite")

#: One benchmark is enough: FIR showed the paper's worst overhead.
_WORKLOAD = lambda: FIR(num_samples=16384)  # noqa: E731


@pytest.fixture(scope="session")
def trace_overhead_results():
    results = {}
    yield results
    if not results:
        return
    base = results.get("untraced")
    lines = ["=== Tracing overhead (median seconds, FIR) ==="]
    for mode in TRACE_MODES:
        if mode not in results:
            continue
        med = sorted(results[mode])[len(results[mode]) // 2]
        rel = f" ({med / base[0]:.2f}x untraced)" if base and mode != \
            "untraced" else ""
        lines.append(f"{mode:10s}{med:10.3f}{rel}")
        if mode == "untraced":
            base = (med,)
    table = "\n".join(lines)
    print("\n\n" + table)
    Path("trace_overhead_summary.txt").write_text(table + "\n")


@pytest.mark.parametrize("mode", TRACE_MODES)
def test_trace_overhead(benchmark, trace_overhead_results, tmp_path,
                        mode):
    benchmark.group = "trace-overhead"
    benchmark.name = mode
    contexts = []

    def setup():
        platform = bench_platform()
        _WORKLOAD().enqueue(platform.driver)
        tracer = None
        if mode == "ring":
            tracer = Tracer(platform.simulation, RingStore(1 << 20))
        elif mode == "sqlite":
            db = tmp_path / f"overhead_{len(contexts)}.db"
            tracer = Tracer(platform.simulation, SQLiteStore(str(db)))
        if tracer is not None:
            tracer.start()
        contexts.append((platform, tracer))
        return (platform,), {}

    def run_simulation(platform):
        assert platform.run()

    benchmark.pedantic(run_simulation, setup=setup, rounds=3,
                       iterations=1, warmup_rounds=0)

    platform, tracer = contexts[-1]
    if mode == "untraced":
        # Zero-cost discipline: nothing was hooked, nothing recorded.
        assert all(not c._hooks for c in platform.simulation.components)
        assert all(not c._hooks
                   for c in platform.simulation.connections)
    else:
        assert tracer.store.recorded > 0
        tracer.stop()
        if mode == "ring":
            # The CI artifact: a real trace of the benchmark run.
            write_jsonl(tracer.store.query(limit=0),
                        "trace_artifact.jsonl")
        tracer.close()
    for _, t in contexts[:-1]:
        if t is not None:
            t.close()

    trace_overhead_results[mode] = list(benchmark.stats.stats.data)


def test_traced_runs_within_sanity_bounds(trace_overhead_results):
    """Runs after the cells above (alphabetical luck is not relied on:
    results are only asserted when present)."""
    if len(trace_overhead_results) < len(TRACE_MODES):
        pytest.skip("overhead cells not all collected in this run")

    def median(vals):
        s = sorted(vals)
        return s[len(s) // 2]

    base = median(trace_overhead_results["untraced"])
    ring = median(trace_overhead_results["ring"])
    sqlite = median(trace_overhead_results["sqlite"])
    # Recording every hop costs real time, but must stay within sane
    # multiples; untraced must never regress past noise.
    assert ring < base * 4.0
    assert sqlite < base * 5.0
