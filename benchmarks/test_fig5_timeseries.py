"""Figure 5: case study 1's value-over-time charts.

The paper monitors five values of the congested im2col simulation and
reads a distinct signature from each:

* (c)  the ROB top-port buffer — pinned at 8/8 ("no dips"),
* (d1) the ROB transaction count — fluctuating well below capacity
       (70–130 of 128), so ROB size is not the limit,
* (d2) the address translator — short spikes that drain ("high peaks
       turning flat within a short duration"),
* (d3) the L1 cache — constantly maxed at its 16 MSHR entries,
* (d4) the RDMA engine — an alarmingly large in-flight count, the root
       cause (scales with #L1s × MSHR; ≈1000 at the paper's 64-CU
       chiplets, proportionally smaller here).

This bench regenerates the five series by stepping the engine
deterministically and sampling the monitored values through the same
resolution machinery the HTTP API uses, then asserts each signature.
"""

import statistics

import pytest

from repro.core import Monitor
from repro.core.inspector import numeric_value, resolve_path
from repro.gpu import GPUPlatform
from repro.studies.session import problem_platform_config, problem_workload

#: Virtual-time sampling grid.
SAMPLE_STEP = 50e-9
WINDOW = 8e-6        # observation window after warm-up


def _spark(values, width=64):
    blocks = "▁▂▃▄▅▆▇█"
    top = max(max(values), 1.0)
    step = max(1, len(values) // width)
    sampled = values[::step]
    return "".join(blocks[min(len(blocks) - 1,
                              int(v / top * (len(blocks) - 1)))]
                   for v in sampled)


@pytest.fixture(scope="module")
def fig5_series():
    platform = GPUPlatform(problem_platform_config())
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    problem_workload().enqueue(platform.driver)
    platform.start()
    engine = platform.engine
    # Warm up past the H2D copy until congestion develops: the kernel
    # is running and some ROB top port is pinned.
    warmup_t = 0.0
    while warmup_t < 1e-3:
        warmup_t += 0.5e-6
        engine.run_until(warmup_t)
        kernel_on = any(k.ongoing for k in platform.driver.kernels)
        pinned = any(r.top_port.buf.fullness >= 1.0
                     for c in platform.chiplets for r in c.robs)
        if kernel_on and pinned:
            break
    warmup_t += 1e-6  # settle into steady state
    engine.run_until(warmup_t)

    chiplet = platform.chiplets[1]
    rob, at, l1 = chiplet.robs[0], chiplet.ats[0], chiplet.l1s[0]
    rdma = chiplet.rdma
    watched = {
        "rob_top": (rob, "top_port.buf"),
        "rob_transactions": (rob, "size"),
        "at_transactions": (at, "transactions"),
        "l1_transactions": (l1, "transactions"),
        "rdma_transactions": (rdma, "transactions"),
    }
    series = {name: [] for name in watched}
    t = warmup_t
    while t < warmup_t + WINDOW and not platform.simulation.done:
        t += SAMPLE_STEP
        engine.run_until(t)
        for name, (component, path) in watched.items():
            value = numeric_value(resolve_path(component, path))
            series[name].append(value)
    platform.simulation.abort()
    capacities = {
        "rob_top": rob.top_port.buf.capacity,
        "rob_capacity": rob.capacity,
        "l1_mshr": l1.mshr.capacity,
        "num_l1s_per_chiplet": len(chiplet.l1s),
    }
    return series, capacities


def test_fig5_series_regenerate(benchmark, fig5_series):
    """Time one full sampling pass (what the chart rendering costs)."""
    series, caps = fig5_series
    benchmark.group = "fig5"
    benchmark(lambda: {name: list(vals) for name, vals in series.items()})

    print("\n\n=== Figure 5: monitored values over time ===")
    for name, values in series.items():
        print(f"{name:20s} {_spark(values)}  "
              f"min {min(values):5.0f}  mean {statistics.mean(values):6.1f}"
              f"  max {max(values):5.0f}")


def test_fig5c_rob_top_port_pinned(benchmark, fig5_series):
    series, caps = fig5_series
    benchmark.group = "fig5"
    values = series["rob_top"]
    benchmark(lambda: statistics.median(values))
    # Pinned at capacity for a large share of the window, median full.
    full = sum(1 for v in values if v >= caps["rob_top"])
    assert full / len(values) > 0.5
    assert statistics.median(values) >= caps["rob_top"] * 0.75


def test_fig5d_rob_fluctuates_below_capacity(benchmark, fig5_series):
    series, caps = fig5_series
    benchmark.group = "fig5"
    benchmark(lambda: statistics.mean(series["rob_transactions"]))
    values = series["rob_transactions"]
    # High occupancy but NOT a flat line at capacity: the ROB itself is
    # not the limiting resource (paper: 70-130 of 128).
    assert max(values) <= caps["rob_capacity"]
    assert statistics.mean(values) > caps["rob_capacity"] * 0.4
    assert min(values) < caps["rob_capacity"]
    assert len(set(values)) > 5  # genuinely fluctuating


def test_fig5d_translator_spikes_and_drains(benchmark, fig5_series):
    series, _ = fig5_series
    benchmark.group = "fig5"
    benchmark(lambda: statistics.mean(series["at_transactions"]))
    values = series["at_transactions"]
    # Spikes exist but the translator repeatedly drains (near-)empty —
    # "high peaks turning flat within a short duration": reasonable
    # processing speed, not a bottleneck.
    peak = max(values)
    assert peak > 0
    drained = sum(1 for v in values if v <= 1)
    assert drained / len(values) > 0.3
    # Never *stuck* at its peak the way the pinned L1 is.
    at_peak = sum(1 for v in values if v >= peak * 0.95)
    assert at_peak / len(values) < 0.2


def test_fig5d_l1_pinned_at_mshr(benchmark, fig5_series):
    series, caps = fig5_series
    benchmark.group = "fig5"
    benchmark(lambda: statistics.mean(series["l1_transactions"]))
    values = series["l1_transactions"]
    assert max(values) == caps["l1_mshr"]
    # Constantly high: the MSHR is the L1's limiting resource.
    assert statistics.mean(values) > caps["l1_mshr"] * 0.5


def test_fig5d_rdma_holds_the_largest_backlog(benchmark, fig5_series):
    series, caps = fig5_series
    benchmark.group = "fig5"
    benchmark(lambda: statistics.mean(series["rdma_transactions"]))
    rdma = series["rdma_transactions"]
    # Scale-adjusted version of the paper's ~1000: the RDMA gathers
    # in-flight misses from every L1 on the chiplet, so its backlog
    # scales with num_l1s x MSHR and dwarfs any single L1.
    limit = caps["num_l1s_per_chiplet"] * caps["l1_mshr"]
    assert max(rdma) > limit * 0.5
    assert statistics.mean(rdma) > statistics.mean(
        series["l1_transactions"]) * 2
