"""Fleet orchestration throughput: warm pool vs cold per-attempt dispatch.

Not a paper figure — the question a sweep user asks: how much wall time
does the orchestration layer itself add?  The PR-5 fleet answered
"too much": one subprocess per attempt re-paid interpreter start,
module imports and server teardown on every job, measuring **0.97x**
at 2 workers — the pool inverted its own parallelism.

The warm persistent-worker pool pays those fixed costs once per
*worker* instead of once per *job*.  This benchmark drains the same
8-job campaign (`fir`, ``num_samples=1024`` — short jobs, the shape
that dominates real parameter sweeps and punishes per-job overhead
hardest) three ways and gates the ratios:

* **cold serial** — ``warm=False``, 1 worker: the old dispatch, the
  baseline;
* **warm x2** — must beat the baseline by >= 1.7x;
* **warm x4** — must beat it by >= 3.0x.

Pool boot (interpreter + imports + server bind per worker) is excluded
from the timed region via ``wait_ready()`` — a pool boots once and then
serves many campaigns, so campaign throughput is what's measured.  The
gates hold even on a single-core runner: the win comes from deleting
per-job fixed costs, not from CPU parallelism (on multi-core runners
the simulation work itself parallelizes on top of it).

``fleet_throughput_summary.txt`` (committed at the repo root) is this
file's output — regenerate it with::

    PYTHONPATH=src python -m pytest \
        benchmarks/test_fleet_throughput.py -q -s
"""

import time
from pathlib import Path

import pytest

from repro.core import RTMClient
from repro.fleet import FleetGateway, FleetManager, JobQueue, JobSpec

pytestmark = pytest.mark.slow

_NUM_JOBS = 8
_JOB_PARAMS = {"num_samples": 1024}
_GATES = {2: 1.7, 4: 3.0}


def _drain_timed(num_workers, warm, prefix):
    """Wall seconds to drain the standard campaign, pool boot excluded."""
    queue = JobQueue()
    manager = FleetManager(queue, num_workers=num_workers, warm=warm)
    manager.start()
    assert manager.wait_ready(timeout=120), f"{prefix}: pool never booted"
    specs = [JobSpec(f"{prefix}-{i}", "fir", params=dict(_JOB_PARAMS))
             for i in range(_NUM_JOBS)]
    start = time.perf_counter()
    queue.submit_all(specs)
    drained = manager.wait(timeout=600.0)
    wall = time.perf_counter() - start
    manager.stop()
    assert drained, f"{prefix}: queue did not drain"
    counts = queue.counts()
    assert counts["completed"] == _NUM_JOBS, counts
    return wall


def test_warm_pool_speedup_over_cold_dispatch():
    cold = _drain_timed(num_workers=1, warm=False, prefix="cold")
    warm = {w: _drain_timed(num_workers=w, warm=True,
                            prefix=f"warm{w}")
            for w in sorted(_GATES)}

    def line(name, wall):
        return (f"{name:24s} {wall:7.2f}s  "
                f"({_NUM_JOBS / wall:5.2f} jobs/s)")

    rows = [line("cold serial (baseline)", cold)]
    for w, wall in warm.items():
        rows.append(line(f"warm pool, {w} workers", wall)
                    + f"  {cold / wall:5.2f}x  (gate >= {_GATES[w]}x)")
    summary = (f"=== Fleet throughput ({_NUM_JOBS} x fir "
               f"num_samples={_JOB_PARAMS['num_samples']}) ===\n"
               "baseline: one cold subprocess per job attempt, serial\n"
               "(pool boot excluded from all timed regions)\n"
               + "\n".join(rows) + "\n")
    print("\n" + summary)
    Path("fleet_throughput_summary.txt").write_text(summary)

    for w, gate in _GATES.items():
        speedup = cold / warm[w]
        assert speedup >= gate, (
            f"warm pool at {w} workers: {speedup:.2f}x < {gate}x gate\n"
            + summary)


def test_post_campaign_federated_scrape_is_sub_second():
    queue = JobQueue()
    queue.submit_all([JobSpec(f"scrape-{i}", "fir",
                              params=dict(_JOB_PARAMS))
                      for i in range(3)])
    manager = FleetManager(queue, num_workers=3)
    gateway = FleetGateway(manager)
    gateway.start()
    manager.start()
    assert manager.wait(timeout=300.0)
    try:
        client = RTMClient(gateway.url)
        laps = []
        for _ in range(3):
            start = time.perf_counter()
            text = client.metrics_text()
            laps.append(time.perf_counter() - start)
        # Every finished job answers from the control-channel cache —
        # no live scraping, no timeouts — labelled (worker, job).
        for i in range(3):
            assert f'job="scrape-{i}"' in text
        median = sorted(laps)[1]
        print(f"\nfederated scrape latency: median {median * 1e3:.1f}ms "
              f"over {len(laps)} scrapes")
        assert median < 1.0, laps
    finally:
        manager.stop()
        gateway.stop()
