"""Fleet orchestration throughput and gateway scrape latency.

Not a paper figure — the question a sweep user asks: how much wall
time does the orchestration layer itself add?  Asserted shape, not
absolute numbers:

* a pool drains its queue completely, and running W workers is not
  slower than running the same queue on one worker (the scheduler,
  control channel and per-attempt subprocess startup must not eat the
  parallelism);
* one federated ``/metrics`` scrape over the finished campaign (all
  expositions served from the control-channel cache) answers in
  well under a second.
"""

import time
from pathlib import Path

import pytest

from repro.core import RTMClient
from repro.fleet import FleetGateway, FleetManager, JobQueue, JobSpec

pytestmark = pytest.mark.slow


def _drain(num_jobs, num_workers, prefix):
    queue = JobQueue()
    queue.submit_all([JobSpec(f"{prefix}-{i}", "fir", chiplets=1)
                      for i in range(num_jobs)])
    manager = FleetManager(queue, num_workers=num_workers)
    gateway = FleetGateway(manager)
    gateway.start()
    start = time.perf_counter()
    manager.start()
    drained = manager.wait(timeout=300.0)
    wall = time.perf_counter() - start
    assert drained, f"{prefix}: queue did not drain"
    assert queue.counts()["completed"] == num_jobs
    return manager, gateway, wall


def test_parallel_drain_is_not_slower_than_serial():
    m1, g1, serial = _drain(num_jobs=4, num_workers=1, prefix="serial")
    m1.stop()
    g1.stop()
    m2, g2, parallel = _drain(num_jobs=4, num_workers=2,
                              prefix="parallel")
    m2.stop()
    g2.stop()

    speedup = serial / parallel
    summary = (f"=== Fleet throughput (4 x fir-c1) ===\n"
               f"1 worker : {serial:7.2f}s  "
               f"({4 / serial:.2f} jobs/s)\n"
               f"2 workers: {parallel:7.2f}s  "
               f"({4 / parallel:.2f} jobs/s)\n"
               f"speedup  : {speedup:.2f}x\n")
    print("\n" + summary)
    Path("fleet_throughput_summary.txt").write_text(summary)
    # Orchestration overhead must not invert the parallelism; the 1.25
    # allowance absorbs single-core CI runners where two CPU-bound
    # workers merely interleave.
    assert parallel <= serial * 1.25, summary


def test_post_campaign_federated_scrape_is_sub_second():
    manager, gateway, _wall = _drain(num_jobs=3, num_workers=3,
                                     prefix="scrape")
    try:
        client = RTMClient(gateway.url)
        laps = []
        for _ in range(3):
            start = time.perf_counter()
            text = client.metrics_text()
            laps.append(time.perf_counter() - start)
        # All three exited workers answer from the control-channel
        # cache — no live scraping, no timeouts.
        for worker in ("w1", "w2", "w3"):
            assert f'worker="{worker}"' in text
        median = sorted(laps)[1]
        print(f"\nfederated scrape latency: median {median * 1e3:.1f}ms "
              f"over {len(laps)} scrapes")
        assert median < 1.0, laps
    finally:
        manager.stop()
        gateway.stop()
