"""Causal validation of case study 1's diagnosis.

The case study *concludes* that the inter-chiplet network is the root
bottleneck.  The paper's workflow then says: "Once the users find a
performance bottleneck, they may change hardware parameters to test if
the bottlenecks persist" (§III, T5).  This bench performs exactly that
confirmation experiment: re-run the same workload with the network
widened (8× forwarding rate, ¼ link latency) and check that

* the simulation gets substantially faster (the diagnosis was causal,
  not incidental), and
* the RDMA backlog collapses, so the old bottleneck signature is gone.
"""

import statistics

import pytest

from repro.gpu import GPUPlatform
from repro.studies.session import problem_platform_config
from repro.workloads import Im2Col


def _validation_workload() -> Im2Col:
    """The case-study kernel at a batch small enough to run to
    completion twice within a bench budget."""
    return Im2Col(image_width=24, image_height=24, channels=6,
                  batch=48, wavefronts_per_wg=4, images_per_wg=4,
                  cols_per_wavefront=24)


def _run_and_profile(config):
    """Run the case-study kernel; sample RDMA backlog on the way.

    The kernel is launched without the host memcopies: DMA time is
    network-independent and would only dilute the comparison.
    """
    platform = GPUPlatform(config)
    platform.driver.launch_kernel(_validation_workload().kernel())
    platform.start()
    engine = platform.engine
    rdma = platform.chiplets[1].rdma
    backlog = []
    t = 0.0
    while not platform.simulation.done and t < 2e-3:
        t += 0.2e-6
        engine.run_until(t)
        backlog.append(rdma.transactions)
    completed = platform.simulation.done
    # Little's law: mean wait per remote request = L / lambda.
    throughput = rdma.num_forwarded / platform.simulation.now
    mean_wait = statistics.mean(backlog) / throughput if throughput \
        else float("inf")
    return platform.simulation.now, completed, backlog, mean_wait


@pytest.fixture(scope="module")
def slow_and_fast():
    slow_cfg = problem_platform_config()
    fast_cfg = problem_platform_config()
    fast_cfg.net_msgs_per_cycle = 8
    fast_cfg.net_link_latency_cycles = 12
    return _run_and_profile(slow_cfg), _run_and_profile(fast_cfg)


def test_widening_the_network_speeds_up_the_workload(benchmark,
                                                     slow_and_fast):
    benchmark.group = "cs1-validation"
    (slow_time, slow_done, *_), (fast_time, fast_done, *__) = \
        slow_and_fast
    benchmark(lambda: (slow_time, fast_time))
    assert slow_done and fast_done, "both variants must complete"
    speedup = slow_time / fast_time
    print(f"\n\nnetwork fix speedup: {speedup:.2f}x "
          f"({slow_time * 1e6:.1f}us -> {fast_time * 1e6:.1f}us)")
    # The diagnosis was causal: a >1.5x speedup from touching ONLY the
    # network parameter.
    assert speedup > 1.5


def test_rdma_wait_time_collapses_with_the_fast_network(benchmark,
                                                        slow_and_fast):
    """The queueing-theory form of "the network is the bottleneck":
    mean wait per remote request (Little's law, W = L/λ) must drop
    sharply when the network is widened — raw backlog alone can stay
    similar because the faster network also carries more traffic."""
    benchmark.group = "cs1-validation"
    (_, __, slow_backlog, slow_wait), \
        (___, ____, fast_backlog, fast_wait) = slow_and_fast
    benchmark(lambda: statistics.mean(fast_backlog))
    print(f"\n\nRDMA mean wait per request: "
          f"slow-net {slow_wait * 1e9:.0f} ns, "
          f"fast-net {fast_wait * 1e9:.0f} ns")
    assert fast_wait < slow_wait / 2
