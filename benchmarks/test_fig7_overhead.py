"""Figure 7: monitoring overhead across six benchmarks × four scenarios.

The paper runs each benchmark under (1) no monitoring, (2) monitoring
without a browser, (3) a passive browser, and (4) active simulated user
interaction, five times each, and finds the worst overhead to be 3.7%
(FIR) with most cells inside the noise.

Here each (benchmark, scenario) cell is a pytest-benchmark entry
(grouped per benchmark so the comparison is printed side by side).  As
in the paper, the timed region is the *simulation execution* only:
attaching the monitor, starting/stopping the web server, and tearing the
platform down happen outside the measured window.

Expected shape (asserted): every monitored scenario completes, and its
mean overhead stays within sanity bounds — monitoring must never come
close to doubling execution time.
"""

import pytest

from .conftest import SCENARIOS, bench_suite, prepare_scenario

_SUITE = bench_suite()


@pytest.mark.parametrize("workload_name", sorted(_SUITE))
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_overhead(benchmark, fig7_results, workload_name, scenario):
    benchmark.group = f"fig7-{workload_name}"
    benchmark.name = scenario
    factory = _SUITE[workload_name]
    contexts = []

    def setup():
        if contexts:
            contexts.pop().teardown()
        ctx = prepare_scenario(factory, scenario)
        contexts.append(ctx)
        return (ctx,), {}

    def run_simulation(ctx):
        assert ctx.platform.run()

    benchmark.pedantic(run_simulation, setup=setup, rounds=3,
                       iterations=1, warmup_rounds=0)
    last = contexts.pop()
    if scenario == "active":
        assert last.poller is not None and last.poller.requests > 0
    last.teardown()

    cells = fig7_results.setdefault(workload_name,
                                    {s: [] for s in SCENARIOS})
    cells[scenario].extend(benchmark.stats.stats.data)
