"""Figure 3: the buffer-analyzer table during a congested im2col run.

The paper's screenshot shows the most-occupied-buffers table dominated
by ``GPU[*].SA[*].L1VROB[*].TopPort.Buf`` rows at 8/8, followed by
L1VAddrTrans / L1VCache top ports at 4/4.  This bench drives the same
workload/hardware, takes the analyzer snapshot through the monitor
(timed: this is the operation every "Refresh" click pays for), prints
the regenerated table, and asserts its shape.
"""

import threading
import time

import pytest

from repro.core import Monitor
from repro.gpu import GPUPlatform
from repro.studies.session import problem_platform_config, problem_workload


@pytest.fixture(scope="module")
def congested():
    """A live congested im2col simulation + its monitor."""
    platform = GPUPlatform(problem_platform_config())
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    problem_workload().enqueue(platform.driver)
    thread = threading.Thread(target=platform.run, daemon=True)
    thread.start()
    # Wait for the congestion to develop.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        rows = monitor.analyzer.snapshot(sort="percent", top=5)
        if any("L1VROB" in r.name and r.percent >= 1.0 for r in rows):
            break
        time.sleep(0.05)
    yield platform, monitor
    platform.simulation.abort()
    thread.join(timeout=30)


def test_fig3_buffer_table(benchmark, congested):
    platform, monitor = congested
    benchmark.group = "fig3"

    # Evidence first: the congestion oscillates, so (like the paper's
    # user, who refreshed repeatedly) collect the best of several
    # snapshots before timing the snapshot operation itself.
    best = None
    for _ in range(40):
        rows = monitor.analyzer.snapshot(sort="percent", top=12)
        if rows and (best is None
                     or rows[0].percent > best[0].percent
                     or ("L1VROB" in rows[0].name
                         and rows[0].percent >= 1.0)):
            best = rows
        if best and any("L1VROB" in r.name and r.percent >= 1.0
                        for r in best):
            break
        time.sleep(0.03)

    benchmark(lambda: monitor.analyzer.snapshot(sort="percent", top=12))

    # Regenerate the figure from the best exemplar.
    print("\n\n=== Figure 3: most occupied buffers (sort: percent) ===")
    print(f"{'Buffer':48s}{'Size':>6s}{'Cap':>6s}")
    for row in best:
        print(f"{row.name:48s}{row.size:>6d}{row.capacity:>6d}")

    # Shape assertions: ROB top ports pinned at 8/8 lead the table,
    # with L1 pipeline top ports at 4/4 among the rows.
    assert best, "analyzer returned no occupied buffers"
    full = [r for r in best if r.percent >= 1.0]
    assert any("L1VROB" in r.name and r.name.endswith("TopPort.Buf")
               and r.capacity == 8 for r in full)
    # The table is dominated by L1-pipeline buffers (ROB / address
    # translator / L1 cache top ports), as in the paper's screenshot.
    l1_pipeline_rows = [r for r in best if "L1V" in r.name]
    assert len(l1_pipeline_rows) >= len(best) // 2


def test_fig3_sort_by_size(benchmark, congested):
    platform, monitor = congested
    benchmark.group = "fig3"

    rows = benchmark(lambda: monitor.analyzer.snapshot(sort="size",
                                                       top=12))
    sizes = [r.size for r in rows]
    assert sizes == sorted(sizes, reverse=True)
