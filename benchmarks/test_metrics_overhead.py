"""Metrics overhead: uninstrumented vs registry-instrumented runs.

The registry's tentpole claim mirrors the tracer's (and AkitaRTM §VII):
instrumentation that is not attached must cost nothing.  Two cells,
same workload and platform as a Figure 7 column:

1. ``uninstrumented`` — no SimMetrics constructed; every hook fast path
   (``if self._hooks``) short-circuits.  The cell asserts the engine,
   components and connections really are hook-free.
2. ``registry``       — SimMetrics attached: engine event/pass timing
   hooks live, buffer-occupancy observation at every delivery, pull
   collectors for ports/caches/CUs/RDMA, plus the self-overhead
   counters (rtm_hook_callback_seconds_total by position).

The registry cell's final state is exposed to
``metrics_exposition.txt`` — a real Prometheus scrape of the benchmark
run — so CI uploads it alongside the timing summary.
"""

from pathlib import Path

import pytest

from repro.metrics import SimMetrics, expose
from repro.workloads import FIR

from .conftest import bench_platform

METRICS_MODES = ("uninstrumented", "registry")

#: Same single-benchmark choice as the tracing cells: FIR showed the
#: paper's worst overhead.
_WORKLOAD = lambda: FIR(num_samples=16384)  # noqa: E731


@pytest.fixture(scope="session")
def metrics_overhead_results():
    results = {}
    yield results
    if not results:
        return
    base = results.get("uninstrumented")
    lines = ["=== Metrics overhead (median seconds, FIR) ==="]
    for mode in METRICS_MODES:
        if mode not in results:
            continue
        med = sorted(results[mode])[len(results[mode]) // 2]
        rel = f" ({med / base[0]:.2f}x uninstrumented)" \
            if base and mode != "uninstrumented" else ""
        lines.append(f"{mode:14s}{med:10.3f}{rel}")
        if mode == "uninstrumented":
            base = (med,)
    table = "\n".join(lines)
    print("\n\n" + table)
    Path("metrics_overhead_summary.txt").write_text(table + "\n")


@pytest.mark.parametrize("mode", METRICS_MODES)
def test_metrics_overhead(benchmark, metrics_overhead_results, mode):
    benchmark.group = "metrics-overhead"
    benchmark.name = mode
    contexts = []

    def setup():
        platform = bench_platform()
        _WORKLOAD().enqueue(platform.driver)
        sim_metrics = None
        if mode == "registry":
            sim_metrics = SimMetrics(platform.simulation)
            sim_metrics.start()
        contexts.append((platform, sim_metrics))
        return (platform,), {}

    def run_simulation(platform):
        assert platform.run()

    benchmark.pedantic(run_simulation, setup=setup, rounds=3,
                       iterations=1, warmup_rounds=0)

    platform, sim_metrics = contexts[-1]
    if mode == "uninstrumented":
        # Zero-cost discipline: the timed runs had no hooks anywhere.
        assert not platform.simulation.engine._hooks
        assert all(not c._hooks for c in platform.simulation.components)
        assert all(not c._hooks
                   for c in platform.simulation.connections)
    else:
        sim_metrics.stop()
        snap = sim_metrics.registry.snapshot()
        assert snap["rtm_engine_events_total"]["samples"][0][
            "value"] == platform.simulation.engine.event_count
        # The CI artifact: a real scrape of the benchmark run.
        Path("metrics_exposition.txt").write_text(
            expose(sim_metrics.registry))

    metrics_overhead_results[mode] = list(benchmark.stats.stats.data)


def test_registry_run_within_sanity_bounds(metrics_overhead_results):
    """Acceptance bound: registry-on stays <= 1.5x the uninstrumented
    baseline (runs after the cells; skips when they did not)."""
    if len(metrics_overhead_results) < len(METRICS_MODES):
        pytest.skip("overhead cells not all collected in this run")

    def median(vals):
        s = sorted(vals)
        return s[len(s) // 2]

    base = median(metrics_overhead_results["uninstrumented"])
    registry = median(metrics_overhead_results["registry"])
    assert registry < base * 1.5
