"""Historian overhead: a recorded campaign vs a merely monitored one.

The historian's design premise is that durability lives *off* the
simulation hot path: one background thread samples the registry on a
wall-clock cadence, evaluates alert rules, and batches rows into
SQLite.  The simulation thread never touches the database.

Two cells, same workload and platform as the metrics-overhead table:

1. ``monitored`` — SimMetrics attached (the baseline every monitored
   run already pays);
2. ``historian`` — the same, plus a :class:`HistorianService`
   recording snapshots into a SQLite historian on the fleet's
   default 500 ms cadence with a threshold alert rule armed.

The acceptance gate is the PR's bound: the recorded run stays within
1.1x of the monitored baseline.
"""

import tempfile
from pathlib import Path

import pytest

from repro.historian import Historian, HistorianService, MetricRule
from repro.historian.service import registry_source
from repro.metrics import SimMetrics
from repro.workloads import FIR

from .conftest import bench_platform

HISTORIAN_MODES = ("monitored", "historian")

_WORKLOAD = lambda: FIR(num_samples=16384)  # noqa: E731


@pytest.fixture(scope="session")
def historian_overhead_results():
    results = {}
    yield results
    if not results:
        return
    lines = ["=== Historian overhead (median seconds, FIR) ==="]
    base = None
    for mode in HISTORIAN_MODES:
        if mode not in results:
            continue
        med = sorted(results[mode])[len(results[mode]) // 2]
        rel = (f" ({med / base:.2f}x monitored)"
               if base is not None else "")
        lines.append(f"{mode:12s}{med:10.3f}{rel}")
        if mode == "monitored":
            base = med
    table = "\n".join(lines)
    print("\n\n" + table)
    Path("historian_overhead_summary.txt").write_text(table + "\n")


@pytest.mark.parametrize("mode", HISTORIAN_MODES)
def test_historian_overhead(benchmark, historian_overhead_results,
                            mode):
    benchmark.group = "historian-overhead"
    benchmark.name = mode
    contexts = []

    def finalize(context):
        platform, sim_metrics, service, historian = context
        sim_metrics.stop()
        if service is not None:
            service.stop()
        return context

    def setup():
        if contexts:
            # A prior round's sampler must not run during this one.
            finalize(contexts[-1])
        platform = bench_platform()
        _WORKLOAD().enqueue(platform.driver)
        sim_metrics = SimMetrics(platform.simulation)
        sim_metrics.start()
        service = historian = None
        if mode == "historian":
            db = Path(tempfile.mkdtemp(
                prefix="rtm-hist-bench-")) / "bench.db"
            historian = Historian(db)
            service = HistorianService(
                historian, campaign_id=f"bench-{len(contexts)}",
                source=registry_source(sim_metrics.registry),
                interval=0.5,
                rules=[MetricRule("rtm_engine_events_total",
                                  op=">=", threshold=1.0)])
            service.start()
        contexts.append((platform, sim_metrics, service, historian))
        return (platform,), {}

    def run_simulation(platform):
        assert platform.run()

    benchmark.pedantic(run_simulation, setup=setup, rounds=3,
                       iterations=1, warmup_rounds=0)

    finalize(contexts[-1])
    if mode == "historian":
        # The recording really happened: snapshots and the armed
        # rule's single deduplicated firing landed in the store.
        _, _, service, historian = contexts[-1]
        stats = historian.stats()
        assert stats["records"]["snapshot"] >= 1
        assert stats["records"]["alert"] == 1
        assert not stats["degraded"]
        historian.close()
    else:
        for _, _, _, historian in contexts:
            assert historian is None

    historian_overhead_results[mode] = list(
        benchmark.stats.stats.data)


def test_historian_run_within_bound(historian_overhead_results):
    """Acceptance gate: recording stays <= 1.1x the monitored
    baseline (runs after the cells; skips when they did not)."""
    if len(historian_overhead_results) < len(HISTORIAN_MODES):
        pytest.skip("overhead cells not all collected in this run")

    def median(vals):
        s = sorted(vals)
        return s[len(s) // 2]

    monitored = median(historian_overhead_results["monitored"])
    recorded = median(historian_overhead_results["historian"])
    assert recorded < monitored * 1.1, \
        f"historian recording cost {recorded / monitored:.2f}x"
