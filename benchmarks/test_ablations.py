"""Ablations of the three §VII design choices (plus the poll interval).

The paper attributes AkitaRTM's negligible overhead to:

1. acting **on demand** — no work when no request arrives;
2. **fine-grained serialization** — one component or value per request;
3. running in a **dedicated thread** parallel to the simulation.

Each ablation builds the *opposite* design and measures the same
simulation:

* A1 ``push_all``      — a thread continuously serializes every
  component (a push-based design);
* A2 ``coarse``        — every request serializes the whole simulation
  instead of one component;
* A3 ``in_engine``     — monitoring work runs inside an engine hook on
  the simulation thread;
* A4 ``poll=X``        — the value-watch sampler interval swept from
  relaxed to aggressive.

Expected shape: the paper's design ("baseline") is never slower than
its ablated counterpart, and the aggressive variants cost measurably
more.
"""

import threading
import time

import pytest

from repro.akita import HookPos
from repro.core import Monitor
from repro.core.inspector import serialize_component
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR


def _build():
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    FIR(num_samples=16384).enqueue(platform.driver)
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    return platform, monitor


# ------------------------------------------------------------------ A1
@pytest.mark.parametrize("mode", ["on_demand", "push_all"])
def test_a1_on_demand_vs_push(benchmark, mode):
    benchmark.group = "A1-on-demand"
    benchmark.name = mode

    def run():
        platform, monitor = _build()
        stop = threading.Event()

        def push_loop():
            # A push design serializes everything, always, whether or
            # not anybody is looking.
            while not stop.wait(0.05):
                for name in monitor.component_names():
                    monitor.component_detail(name)

        pusher = None
        if mode == "push_all":
            pusher = threading.Thread(target=push_loop, daemon=True)
            pusher.start()
        completed = platform.run()
        stop.set()
        if pusher is not None:
            pusher.join(timeout=5)
        assert completed

    benchmark.pedantic(run, rounds=2, iterations=1)


# ------------------------------------------------------------------ A2
@pytest.mark.parametrize("granularity", ["fine", "coarse"])
def test_a2_serialization_granularity(benchmark, granularity):
    """Cost of answering one 'inspect' interaction."""
    benchmark.group = "A2-granularity"
    benchmark.name = granularity
    platform, monitor = _build()
    platform.start()
    platform.engine.run_until(2e-6)  # populate some state
    names = monitor.component_names()

    if granularity == "fine":
        # One component per request (the paper's design): the cost the
        # user pays per click.
        target = names[len(names) // 2]
        benchmark(lambda: monitor.component_detail(target))
    else:
        # Whole-simulation serialization per request.
        def serialize_everything():
            return [serialize_component(monitor.component(n))
                    for n in names]

        benchmark(serialize_everything)
        # The shape claim of §VII design choice 2: answering a request
        # at whole-simulation granularity costs at least an order of
        # magnitude more than one component.
        assert benchmark.stats.stats.median > 10e-6 * len(names)
    platform.simulation.abort()


# ------------------------------------------------------------------ A3
@pytest.mark.parametrize("mode", ["dedicated_thread", "in_engine"])
def test_a3_threading_model(benchmark, mode):
    benchmark.group = "A3-threading"
    benchmark.name = mode

    def run():
        platform, monitor = _build()
        names = platform.simulation.component_names
        counter = {"events": 0}

        if mode == "in_engine":
            # Monitoring work executed ON the simulation thread, inside
            # an engine hook, every 2000 events (roughly matching the
            # dedicated thread's duty cycle).
            def hook(ctx):
                if ctx.pos is not HookPos.AFTER_EVENT:
                    return
                counter["events"] += 1
                if counter["events"] % 2000 == 0:
                    index = (counter["events"] // 2000) % len(names)
                    monitor.component_detail(names[index])

            platform.engine.accept_hook(hook)
            completed = platform.run()
        else:
            stop = threading.Event()

            def poll_loop():
                index = 0
                while not stop.wait(0.02):
                    monitor.component_detail(names[index % len(names)])
                    index += 1

            poller = threading.Thread(target=poll_loop, daemon=True)
            poller.start()
            completed = platform.run()
            stop.set()
            poller.join(timeout=5)
        assert completed

    benchmark.pedantic(run, rounds=2, iterations=1)


# ------------------------------------------------------------------ A4
@pytest.mark.parametrize("interval", [0.2, 0.02, 0.002])
def test_a4_value_poll_interval(benchmark, interval):
    benchmark.group = "A4-poll-interval"
    benchmark.name = f"poll={interval}"

    def run():
        platform, monitor = _build()
        monitor.sample_interval = interval
        chiplet = platform.chiplets[0]
        monitor.watch_value(chiplet.robs[0].name, "size")
        monitor.watch_value(chiplet.l1s[0].name, "transactions")
        monitor.watch_value(chiplet.rdma.name, "transactions")
        monitor.start_sampler()
        completed = platform.run()
        monitor.stop_sampler()
        assert completed

    benchmark.pedantic(run, rounds=2, iterations=1)
