"""Shared machinery for the benchmark harness.

The harness regenerates every table and figure of the paper's
evaluation; see DESIGN.md's experiment index.  Figure 7's four
monitoring scenarios are implemented here:

1. ``none``     — monitoring not activated,
2. ``monitor``  — monitor + HTTP server running, no requests,
3. ``passive``  — a browser-like poller refreshing only time and
                  progress indicators,
4. ``active``   — simulated user interaction: component-detail and
                  buffer-analyzer clicks at fixed intervals.

The absolute wall-clock numbers depend on the host; what must hold (and
what the tests assert) is the paper's *shape*: overhead is small in all
monitored scenarios.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import pytest

from repro.core import Monitor, RTMClient
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import AES, BFS, FIR, Im2Col, KMeans, MatMul, Workload

SCENARIOS = ("none", "monitor", "passive", "active")


def bench_suite() -> Dict[str, Callable[[], Workload]]:
    """The six benchmarks at sizes that fully engage the scaled
    platform's CUs while staying tractable in pure Python."""
    return {
        "aes": lambda: AES(num_blocks=4096),
        "bfs": lambda: BFS(num_vertices=2048),
        "fir": lambda: FIR(num_samples=32768),
        "im2col": lambda: Im2Col.scaled(batch=24),
        "kmeans": lambda: KMeans(num_points=4096),
        "matmul": lambda: MatMul(n=96, tile=16),
    }


def bench_platform() -> GPUPlatform:
    return GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))


class _Poller:
    """Background HTTP poller emulating a browser tab."""

    def __init__(self, client: RTMClient, active: bool,
                 passive_interval: float = 0.5,
                 active_interval: float = 1.0):
        self.client = client
        self.active = active
        self.passive_interval = passive_interval
        self.active_interval = active_interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.requests = 0

    def start(self) -> None:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def _run(self) -> None:
        components: List[str] = []
        click = 0
        last_active = 0.0
        while not self._stop.wait(self.passive_interval):
            try:
                # Passive browser: time + progress indicators refresh.
                self.client.overview()
                self.client.progress()
                self.requests += 2
                if not self.active:
                    continue
                now = time.monotonic()
                if now - last_active < self.active_interval:
                    continue
                last_active = now
                # Active user: clicks in the component list + analyzer
                # refreshes (the paper automated clicks at 1 s intervals;
                # ours are proportionally faster because the simulated
                # runs are seconds, not hours).
                if not components:
                    components = self.client.components()
                    self.requests += 1
                if components:
                    name = components[click % len(components)]
                    click += 1
                    self.client.component(name)
                    self.requests += 1
                self.client.buffers(top=20)
                self.requests += 1
            except Exception:
                # Server shutting down at the end of the run.
                return


@dataclass
class ScenarioContext:
    """A prepared (but not yet run) Figure 7 cell.

    The timed region is ``platform.run()`` alone; everything here —
    monitor attachment, server startup, poller startup and the matching
    teardown — stays outside the measurement, as in the paper (which
    times simulation execution, not tool startup).
    """

    platform: GPUPlatform
    monitor: Optional[Monitor] = None
    poller: Optional["_Poller"] = None

    def teardown(self) -> None:
        if self.poller is not None:
            self.poller.stop()
        if self.monitor is not None:
            self.monitor.stop_server()


def prepare_scenario(workload_factory: Callable[[], Workload],
                     scenario: str) -> ScenarioContext:
    """Set up one (workload, scenario) cell of Figure 7."""
    assert scenario in SCENARIOS
    platform = bench_platform()
    workload_factory().enqueue(platform.driver)
    ctx = ScenarioContext(platform)
    if scenario != "none":
        ctx.monitor = Monitor(platform.simulation)
        ctx.monitor.attach_driver(platform.driver)
        url = ctx.monitor.start_server()
        if scenario in ("passive", "active"):
            ctx.poller = _Poller(RTMClient(url),
                                 active=(scenario == "active"))
            ctx.poller.start()
    return ctx


@dataclass
class ScenarioResult:
    wall_seconds: float
    sim_seconds: float
    completed: bool
    requests: int


def run_scenario(workload_factory: Callable[[], Workload],
                 scenario: str) -> ScenarioResult:
    """Set up, run and tear down one cell (used by non-timing tests)."""
    ctx = prepare_scenario(workload_factory, scenario)
    start = time.perf_counter()
    completed = ctx.platform.run()
    wall = time.perf_counter() - start
    requests = ctx.poller.requests if ctx.poller is not None else 0
    ctx.teardown()
    return ScenarioResult(wall, ctx.platform.simulation.now, completed,
                          requests)


@pytest.fixture(scope="session")
def fig7_results():
    """Session-wide accumulator so the Figure 7 table can be printed
    once at the end of the run."""
    results: Dict[str, Dict[str, List[float]]] = {}
    yield results
    if not results:
        return
    lines = ["=== Figure 7: execution time by monitoring scenario "
             "(medians, seconds) ==="]
    header = f"{'benchmark':10s}" + "".join(f"{s:>12s}" for s in SCENARIOS)
    lines.append(header + f"{'overhead%':>12s}")

    def median(v):
        if not v:
            return float("nan")
        s = sorted(v)
        mid = len(s) // 2
        return s[mid] if len(s) % 2 else (s[mid - 1] + s[mid]) / 2

    for name in sorted(results):
        cells = results[name]
        meds = {s: median(v) for s, v in cells.items()}
        base = meds.get("none")
        worst = max((meds[s] for s in SCENARIOS[1:] if s in meds),
                    default=float("nan"))
        overhead = 100.0 * (worst - base) / base if base else float("nan")
        row = f"{name:10s}" + "".join(
            f"{meds.get(s, float('nan')):12.3f}" for s in SCENARIOS)
        lines.append(row + f"{overhead:12.1f}")
    table = "\n".join(lines)
    print("\n\n" + table)
    # Also persist as an artifact (pytest captures teardown prints).
    from pathlib import Path
    Path("fig7_summary.txt").write_text(table + "\n")
