"""Case study 2 (§V-B): detecting and debugging the write-buffer hang.

The bench reproduces the debugging session on the bug-enabled platform:

* the store-storm workload provably deadlocks (engine dry, workload
  incomplete) and AkitaRTM flags the hang from frozen time + low CPU;
* the buffer snapshot shows L1 / L2 / write-buffer / DRAM-path buffers
  with content (the paper's entry point to the search);
* stepping the suspect components with Tick + Kick Start surfaces the
  mutual wait (L2's storage ↔ write buffer) via their diagnostics;
* the patched simulator completes the identical workload.

Timed quantities: time-to-hang detection, and the fixed-variant run.
"""

import threading
import time

import pytest

from repro.core import Monitor, RTMClient
from repro.gpu import GPUPlatform
from repro.workloads import StoreStorm


def _launch(buggy):
    platform = GPUPlatform(StoreStorm.trigger_config(buggy=buggy))
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    monitor.start_sampler()
    url = monitor.start_server()
    StoreStorm().enqueue(platform.driver)
    return platform, monitor, RTMClient(url)


def test_case_study2_hang_detected(benchmark):
    benchmark.group = "case-study-2"

    def run_until_hang_detected():
        platform, monitor, client = _launch(buggy=True)
        thread = threading.Thread(
            target=lambda: platform.run(hang_wait=60.0), daemon=True)
        start = time.perf_counter()
        thread.start()
        while True:
            status = client.hang()
            if status["hung"]:
                break
            assert time.perf_counter() - start < 120
            time.sleep(0.05)
        elapsed = time.perf_counter() - start
        state = (platform, monitor, client, thread, status)
        return elapsed, state

    elapsed, (platform, monitor, client, thread, status) = \
        benchmark.pedantic(run_until_hang_detected, rounds=1,
                           iterations=1)

    # The hang signature.
    assert status["run_state"] == "hung"
    assert platform.simulation.run_state == "hung"

    # The analyzer's stuck-buffer list covers the memory hierarchy.
    stuck = {row["buffer"] for row in status["stuck_buffers"]}
    assert any("L1VCache" in name for name in stuck)
    assert any("L2" in name or "WriteBuffer" in name for name in stuck)

    # Step the suspects (Tick + Kick Start) and read their diagnostics.
    blocked = {}
    for name in client.components():
        if "L2[" in name or "WriteBuffer" in name:
            client.tick(name)
            client.kickstart()
            time.sleep(0.05)
            detail = client.component(name)
            reason = detail["fields"].get("blocked_on")
            if reason:
                blocked[name] = reason
    assert any("local storage" in reason for reason in blocked.values())
    assert any("write buffer" in reason for reason in blocked.values())
    print("\n\n=== Case study 2: localized deadlock ===")
    for name, reason in blocked.items():
        print(f"  {name:28s} blocked on: {reason}")

    platform.simulation.abort()
    thread.join(timeout=30)
    monitor.stop_server()


def test_case_study2_fix_completes(benchmark):
    benchmark.group = "case-study-2"

    def run_fixed():
        platform, monitor, client = _launch(buggy=False)
        completed = platform.run(hang_wait=0.0)
        monitor.stop_server()
        return completed

    completed = benchmark.pedantic(run_fixed, rounds=1, iterations=1)
    assert completed is True


def test_case_study2_progress_freezes_on_hang(benchmark):
    """The first hang symptom the paper lists: progress bars stop."""
    benchmark.group = "case-study-2"

    def run_and_observe():
        platform, monitor, client = _launch(buggy=True)
        thread = threading.Thread(
            target=lambda: platform.run(hang_wait=60.0), daemon=True)
        thread.start()
        while not client.hang()["hung"]:
            time.sleep(0.05)
        bars_then = {b["name"]: b["completed"] for b in client.progress()}
        time.sleep(0.3)
        bars_now = {b["name"]: b["completed"] for b in client.progress()}
        platform.simulation.abort()
        thread.join(timeout=30)
        monitor.stop_server()
        return bars_then, bars_now

    bars_then, bars_now = benchmark.pedantic(run_and_observe, rounds=1,
                                             iterations=1)
    assert bars_then == bars_now  # frozen
    kernel = next(n for n in bars_then if n.startswith("kernel"))
    assert bars_then[kernel] < 16  # stopped short of completion
