"""Checkpoint-resume pays: a restored attempt redoes < 50% of the work.

ISSUE 7's acceptance benchmark.  A stall-killed (or crashed) worker's
retried job used to restart from t=0, repaying every event already
simulated.  With a checkpoint cadence the retry resumes from the last
snapshot; this harness measures the redo directly in events — the
engine's own unit of work — and gates the saving.
"""

from __future__ import annotations

import json
import pathlib

from repro.checkpoint import Checkpointer, load_checkpoint
from repro.gpu import GPUPlatform, GPUPlatformConfig
from repro.workloads import FIR

SUMMARY = pathlib.Path(__file__).resolve().parent.parent \
    / "checkpoint_resume_summary.txt"

#: The retry must redo less than this fraction of a cold run's events.
MAX_REDO_FRACTION = 0.5


def _workload():
    return FIR(num_samples=8192)


def _cold_events() -> int:
    platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
    _workload().enqueue(platform.driver)
    assert platform.run()
    return platform.engine.event_count


def test_resume_redoes_less_than_half_of_a_cold_restart():
    cold_events = _cold_events()

    # Checkpoint on a deterministic cadence sized so the last snapshot
    # lands around 60% of the run — a "crash with the last periodic
    # checkpoint well behind the failure point" position, the worst
    # case a sane cadence produces.
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        path = str(pathlib.Path(tmp) / "ckpt.rtm")
        platform = GPUPlatform(GPUPlatformConfig.small(num_chiplets=2))
        _workload().enqueue(platform.driver)
        ckpt = Checkpointer(platform, path,
                            every_events=max(1, (cold_events * 3) // 5))
        ckpt.start()
        assert platform.run()
        ckpt.stop()
        assert ckpt.count == 1, "cadence should leave one snapshot ~60%"

        restored, header = load_checkpoint(path, workload=_workload())
        events_at_restore = restored.engine.event_count
        assert restored.engine.now > 0.0, \
            "resume must start from engine time > 0, not t=0"
        assert restored.run()
        redo_events = restored.engine.event_count - events_at_restore

    fraction = redo_events / cold_events
    SUMMARY.write_text(json.dumps({
        "cold_events": cold_events,
        "checkpoint_sim_time": header["meta"]["sim_time"],
        "events_at_restore": events_at_restore,
        "redo_events": redo_events,
        "redo_fraction": round(fraction, 4),
        "bound": MAX_REDO_FRACTION,
    }, indent=2) + "\n")

    assert fraction < MAX_REDO_FRACTION, (
        f"resume redid {fraction:.0%} of a cold run "
        f"({redo_events}/{cold_events} events); bound is "
        f"{MAX_REDO_FRACTION:.0%}")
