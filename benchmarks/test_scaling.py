"""Scaling behaviour of the monitor with simulator size.

Not a paper figure, but the question any adopter asks next: what do
registration, buffer snapshots, and component serialization cost as the
simulated system grows from a toy to the paper's full 4-chiplet,
256-CU machine (>1000 components, >4000 buffers)?

Expected shape (asserted): registration and snapshot cost grow roughly
linearly with the component count — no superlinear blowup — and even at
full scale a bottleneck-analyzer snapshot stays in the
single-millisecond range, consistent with the on-demand design being
usable at the paper's scale.
"""

import pytest

from repro.core import Monitor
from repro.gpu import GPUPlatform, GPUPlatformConfig

CONFIGS = {
    "small-2x2x2": GPUPlatformConfig.small(num_chiplets=2),
    "medium-2x8x4": GPUPlatformConfig.small(num_chiplets=2,
                                            sas_per_gpu=8, cus_per_sa=4),
    "paper-4x16x4": GPUPlatformConfig.r9_nano_mcm(num_chiplets=4),
}


@pytest.fixture(scope="module")
def platforms():
    return {name: GPUPlatform(cfg) for name, cfg in CONFIGS.items()}


@pytest.mark.parametrize("scale", list(CONFIGS))
def test_registration_cost(benchmark, platforms, scale):
    benchmark.group = "scaling-registration"
    benchmark.name = scale
    platform = platforms[scale]

    def register():
        monitor = Monitor()
        monitor.register_engine(platform.engine)
        for component in platform.simulation.components:
            monitor.register_component(component)
        return monitor

    monitor = benchmark.pedantic(register, rounds=2, iterations=1)
    assert monitor.analyzer.buffer_count > 0


@pytest.mark.parametrize("scale", list(CONFIGS))
def test_snapshot_cost(benchmark, platforms, scale):
    benchmark.group = "scaling-snapshot"
    benchmark.name = scale
    platform = platforms[scale]
    monitor = Monitor(platform.simulation)

    rows = benchmark(lambda: monitor.analyzer.snapshot(
        sort="percent", top=30, include_empty=True))
    assert rows
    if scale == "paper-4x16x4":
        assert monitor.analyzer.buffer_count > 2000
        # Full paper scale: a snapshot must stay interactive (<150 ms
        # even on this slow single-core host).
        assert benchmark.stats.stats.median < 0.15


@pytest.mark.parametrize("scale", list(CONFIGS))
def test_component_detail_cost(benchmark, platforms, scale):
    benchmark.group = "scaling-detail"
    benchmark.name = scale
    platform = platforms[scale]
    monitor = Monitor(platform.simulation)
    target = platform.chiplets[0].l1s[0].name

    detail = benchmark(lambda: monitor.component_detail(target))
    # One-component serialization is scale-independent by design.
    assert detail["name"] == target
    assert benchmark.stats.stats.median < 0.01


def test_tree_scales_to_paper_size(benchmark, platforms):
    benchmark.group = "scaling-tree"
    platform = platforms["paper-4x16x4"]
    monitor = Monitor(platform.simulation)
    tree = benchmark(monitor.component_tree)
    assert len(platform.simulation.components) > 1000
    assert len(tree["GPU[0]"]) >= 16 + 4 * 3 + 3  # SAs + banks + ctrl
