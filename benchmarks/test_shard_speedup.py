"""Sharded-simulation speedup: N shard processes vs one monolithic run.

The conservative window protocol only pays off if the per-window
barrier + boundary-ferry overhead is small against the simulation work
inside each window.  This benchmark runs one 4-chiplet StoreStorm
workload monolithically, then sharded 2 and 4 ways, and reports the
wall-clock ratios.  ``page_locality=4`` keeps each workgroup's stores
on its own chiplet, the partitioning-friendly regime the tentpole
targets (the equivalence suite covers the boundary-heavy default
pattern).

Shard-pool boot (one interpreter + full platform build per worker) is
excluded via ``ShardResult.boot_seconds``, mirroring the fleet
throughput benchmark: a long campaign pays boot once, and steady-state
window throughput is what's measured.

Gating is CPU-aware.  Shards are separate *processes*, so — unlike the
warm fleet pool, whose win is fixed-cost deletion — the speedup here IS
CPU parallelism, and a runner with fewer cores than shards physically
cannot show it.  On such runners the benchmark still runs everything
and instead gates the protocol's *overhead*: time-sliced shards must
stay within ``_OVERHEAD_GATE`` of the monolithic wall (windows are big
enough that barriers and ferrying cost little even with zero
parallelism).  Either way committed instructions must match the
monolithic run exactly — a fast wrong simulation gates nothing.

``shard_speedup_summary.txt`` (committed at the repo root) is this
file's output — regenerate it with::

    PYTHONPATH=src python -m pytest \
        benchmarks/test_shard_speedup.py -q -s
"""

import os
import time
from pathlib import Path

import pytest

from repro.gpu.cu import ComputeUnit
from repro.gpu.platform import GPUPlatform, GPUPlatformConfig
from repro.shard import run_sharded
from repro.workloads import StoreStorm

pytestmark = pytest.mark.slow

_CONFIG = GPUPlatformConfig.small(
    num_chiplets=4, sas_per_gpu=4, cus_per_sa=4,
    driver_conn_latency_cycles=20, net_msgs_per_cycle=8)
_WORKLOAD = StoreStorm(num_workgroups=64, wavefronts_per_wg=4,
                       stores_per_wavefront=32, page_locality=4)

#: Parallel-speedup gates, applied when the runner has the cores.
_GATES = {2: 1.5, 4: 2.2}
#: Single-core fallback gate: sharded wall (boot excluded) must stay
#: within this factor of monolithic — the protocol overhead bound.
_OVERHEAD_GATE = 1.35


def _cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _monolithic_timed():
    platform = GPUPlatform(_CONFIG)
    _WORKLOAD.enqueue(platform.driver)
    start = time.perf_counter()
    completed = platform.run()
    wall = time.perf_counter() - start
    assert completed, "monolithic run did not complete"
    instructions = sum(c.num_instructions
                       for c in platform.simulation.components
                       if isinstance(c, ComputeUnit))
    return wall, instructions


def _sharded_timed(num_shards):
    result = run_sharded(_CONFIG, _WORKLOAD, num_shards)
    assert result.completed, f"{num_shards}-shard run did not complete"
    return result.wall_seconds - result.boot_seconds, result


def test_shard_speedup_over_monolithic():
    cores = _cores()
    mono_wall, mono_instructions = _monolithic_timed()
    runs = {n: _sharded_timed(n) for n in sorted(_GATES)}

    rows = [f"{'monolithic (baseline)':26s} {mono_wall:7.2f}s"]
    for n, (wall, result) in runs.items():
        gated = cores >= n
        gate_note = (f"gate >= {_GATES[n]}x" if gated
                     else f"<{n} cores: overhead gate <= "
                          f"{_OVERHEAD_GATE}x mono")
        rows.append(
            f"{f'sharded, {n} workers':26s} {wall:7.2f}s  "
            f"{mono_wall / wall:5.2f}x  windows={result.windows}  "
            f"boundary_msgs={result.boundary_messages}  ({gate_note})")
    summary = (
        f"=== Shard speedup (storestorm wgs={_WORKLOAD.num_workgroups} "
        f"wfs={_WORKLOAD.wavefronts_per_wg} "
        f"stores={_WORKLOAD.stores_per_wavefront} "
        f"page_locality={_WORKLOAD.page_locality}, "
        f"{_CONFIG.num_chiplets} chiplets) ===\n"
        f"runner cores: {cores} "
        "(parallel gates engage when cores >= shards)\n"
        "(shard-pool boot excluded from all timed regions)\n"
        + "\n".join(rows) + "\n")
    print("\n" + summary)
    Path("shard_speedup_summary.txt").write_text(summary)

    for n, (wall, result) in runs.items():
        assert result.instructions == mono_instructions, (
            f"{n} shards committed {result.instructions} instructions, "
            f"monolithic committed {mono_instructions}\n" + summary)
        if cores >= n:
            speedup = mono_wall / wall
            assert speedup >= _GATES[n], (
                f"sharded at {n} workers: {speedup:.2f}x < "
                f"{_GATES[n]}x gate\n" + summary)
        else:
            assert wall <= mono_wall * _OVERHEAD_GATE, (
                f"sharded at {n} workers on {cores} core(s): "
                f"{wall:.2f}s exceeds overhead gate "
                f"{_OVERHEAD_GATE}x * {mono_wall:.2f}s\n" + summary)
