"""Figure 4: buffer fullness identifies the slow stage of a chain.

A four-component chain A → B → C → D where C is an order of magnitude
slower than the others and the producer outruns it.  The figure's
reasoning, as the analyzer sees it:

* D's buffer never fills — the component *downstream* of the bottleneck
  is starved, so it "can fulfill requests" (paper wording);
* C's buffer is persistently full — C cannot keep up;
* upstream buffers (B) may also fill through backpressure, which the
  paper acknowledges ("more components may have buffer contents than
  the actually problematic components, caused by buffer backpressure",
  §V-B) — the bottleneck is therefore the most-downstream full buffer.
"""

import pytest

from repro.akita import (
    DirectConnection,
    Msg,
    Simulation,
    TickingComponent,
)
from repro.core import BufferAnalyzer


class _Producer(TickingComponent):
    """Emits one request per cycle until backpressure stops it."""

    def __init__(self, name, engine, total):
        super().__init__(name, engine)
        self.out = self.add_port("Out", 4)
        self.downstream = None
        self.remaining = total

    def tick(self):
        if self.remaining == 0:
            return False
        if self.out.send(Msg(dst=self.downstream)):
            self.remaining -= 1
            return True
        return False


class _Stage(TickingComponent):
    def __init__(self, name, engine, service_cycles):
        super().__init__(name, engine, freq=1e9 / service_cycles)
        self.inp = self.add_port("In", 4)
        self.out = self.add_port("Out", 4)
        self.downstream = None
        self.processed = 0

    def tick(self):
        if self.downstream is None:
            if self.inp.retrieve_incoming() is not None:
                self.processed += 1
                return True
            return False
        if self.inp.peek_incoming() is None:
            return False
        if self.out.send(Msg(dst=self.downstream)):
            self.inp.retrieve_incoming()
            self.processed += 1
            return True
        return False


def _build(total=2000):
    sim = Simulation("fig4")
    engine = sim.engine
    a = _Producer("A", engine, total)
    b = _Stage("B", engine, service_cycles=2)
    c = _Stage("C", engine, service_cycles=10)
    d = _Stage("D", engine, service_cycles=2)
    a.downstream, b.downstream, c.downstream = b.inp, c.inp, d.inp
    for src, dst, name in [(a.out, b.inp, "AB"), (b.out, c.inp, "BC"),
                           (c.out, d.inp, "CD")]:
        conn = DirectConnection(name, engine, latency=1e-9)
        conn.plug_in(src)
        conn.plug_in(dst)
    for comp in (a, b, c, d):
        sim.register_component(comp)
    sim.set_completion_check(lambda: d.processed >= total)
    analyzer = BufferAnalyzer()
    for comp in (a, b, c, d):
        analyzer.register_component(comp)
    return sim, a, b, c, d, analyzer


#: Stage order along the chain, most downstream last.
_CHAIN_ORDER = ["A", "B", "C", "D"]


def _stage_of(buffer_name):
    return buffer_name.split(".", 1)[0]


def test_fig4_bottleneck_identification(benchmark):
    benchmark.group = "fig4"

    def run_and_sample():
        sim, a, b, c, d, analyzer = _build()
        a.tick_later()
        samples = []
        t = 0.0
        while not sim.done and t < 1e-3:
            t += 1.013e-6
            sim.engine.run_until(t)
            samples.append(analyzer.snapshot(sort="percent", top=8,
                                             include_empty=True))
        sim.engine.run()
        return samples, d

    samples, d = benchmark.pedantic(run_and_sample, rounds=2,
                                    iterations=1)
    congested = [s for s in samples
                 if any(r.percent >= 1.0 for r in s)]
    assert congested, "chain never saturated"

    full_counts = {stage: 0 for stage in _CHAIN_ORDER}
    for snapshot in congested:
        for row in snapshot:
            if row.percent >= 1.0 and row.name.endswith("In.Buf"):
                full_counts[_stage_of(row.name)] += 1
    # D (downstream of the bottleneck) never congests: it is starved.
    assert full_counts["D"] == 0
    # C's input is persistently full.  B's congestion is backpressure
    # radiating from C; the analyzer's verdict is the most-downstream
    # consistently-full buffer, which is C's (D being empty proves the
    # blockage sits at C, not further down).
    assert full_counts["C"] / len(congested) > 0.6

    print("\n\n=== Figure 4: analyzer snapshot of the congested chain ===")
    example = congested[len(congested) // 2]
    for row in example:
        if not row.name.endswith("In.Buf"):
            continue
        marker = ""
        if _stage_of(row.name) == "C":
            marker = "   <-- most-downstream full buffer: the bottleneck"
        elif row.percent >= 1.0:
            marker = "   (backpressure from C)"
        print(f"{row.name:10s} {row.size}/{row.capacity}{marker}")


def test_fig4_chain_completes_at_bottleneck_rate(benchmark):
    """Throughput sanity: the chain drains at C's service rate."""
    benchmark.group = "fig4"

    def run():
        sim, a, b, c, d, analyzer = _build(total=2000)
        a.tick_later()
        sim.engine.run()
        return sim, d

    sim, d = benchmark.pedantic(run, rounds=2, iterations=1)
    assert d.processed == 2000
    # 2000 requests x 10 ns each, minus pipeline fill slack.
    assert sim.now == pytest.approx(2000 * 10e-9, rel=0.05)
