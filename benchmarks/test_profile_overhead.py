"""Continuous-profiling overhead: monitored vs monitored+profiled.

The profiling plane's tentpole claim: the always-on rolling profiler at
its default rate (50 Hz) is cheap enough to leave enabled for a whole
campaign.  Two cells, same workload and platform as a Figure 7 column:

1. ``monitored`` — Monitor attached, SimMetrics hooks live; no
   profiler.  This is the baseline Figure 7 already pays for.
2. ``profiled``  — the same stack plus ``start_continuous_profiling()``
   at defaults: 50 Hz sampling, 2 s windows, adaptive back-off armed.

Because the gate is tight (1.05x) and shared CI hosts drift, the two
cells are *interleaved*: each round runs a monitored/profiled pair
back-to-back and contributes one pairwise ratio, so slow-moving host
noise hits both sides of every ratio equally.  The gate asserts the
median pairwise ratio; the table lands in
``profile_overhead_summary.txt`` for CI to commit as an artifact.
"""

import time
from pathlib import Path

import pytest

from repro.core import Monitor
from repro.workloads import FIR

from .conftest import bench_platform

#: Same single-benchmark choice as the metrics/tracing cells: FIR
#: showed the paper's worst overhead.
_WORKLOAD = lambda: FIR(num_samples=16384)  # noqa: E731

#: The gate: continuous profiling may cost at most 5% on top of an
#: already-monitored run (median of pairwise ratios).
_GATE = 1.05

_PAIRS = 5


def _run_once(profiled):
    """One monitored run; returns (wall_seconds, profiler_evidence)."""
    platform = bench_platform()
    _WORKLOAD().enqueue(platform.driver)
    monitor = Monitor(platform.simulation)
    monitor.attach_driver(platform.driver)
    monitor.ensure_sim_metrics().start()
    if profiled:
        monitor.start_continuous_profiling()  # paper-default rate
    start = time.perf_counter()
    completed = platform.run()
    wall = time.perf_counter() - start
    assert completed
    evidence = None
    if profiled:
        profiler = monitor.continuous
        evidence = {"status": profiler.status(),
                    "threads": set(profiler.attribution()["threads"])}
    monitor.stop_server()
    return wall, evidence


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


@pytest.fixture(scope="module")
def overhead_pairs():
    # One throwaway warm-up pair: first-run effects (allocator growth,
    # bytecode cache) would otherwise land on whichever cell goes
    # first.
    _run_once(False)
    _run_once(True)
    pairs = []
    for _ in range(_PAIRS):
        monitored, _ = _run_once(False)
        profiled, evidence = _run_once(True)
        pairs.append((monitored, profiled, evidence))
    return pairs


def test_profiler_really_ran(overhead_pairs):
    """The profiled cells must actually have profiled: samples taken,
    windows kept, the simulation thread attributed."""
    for _, __, evidence in overhead_pairs:
        assert evidence["status"]["samples"] > 0
        assert evidence["status"]["windows_kept"] > 0
        assert "simulation" in evidence["threads"]


def test_profiled_run_within_gate(overhead_pairs):
    """Acceptance bound: continuous profiling at the default rate costs
    <= 1.05x of the unprofiled monitored run."""
    ratios = [profiled / monitored
              for monitored, profiled, _ in overhead_pairs]
    med_monitored = _median([m for m, _, __ in overhead_pairs])
    med_profiled = _median([p for _, p, __ in overhead_pairs])
    med_ratio = _median(ratios)

    lines = ["=== Continuous-profiling overhead "
             f"(FIR, {_PAIRS} interleaved pairs) ===",
             f"monitored median  {med_monitored:8.3f} s",
             f"profiled  median  {med_profiled:8.3f} s",
             "pairwise ratios   "
             + "  ".join(f"{r:.3f}" for r in ratios),
             f"median ratio      {med_ratio:8.3f}x",
             f"gate: median ratio <= {_GATE:.2f}x monitored"]
    table = "\n".join(lines)
    print("\n\n" + table)
    Path("profile_overhead_summary.txt").write_text(table + "\n")

    assert med_ratio <= _GATE, \
        f"median pairwise ratio {med_ratio:.3f}x exceeds {_GATE}x gate"
