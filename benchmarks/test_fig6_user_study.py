"""Figure 6: the user-study survey distribution.

Runs the full six-participant scripted study — every participant drives
the real AkitaRTM HTTP API against live simulations — and checks the
paper's reported findings:

* PT3, PT4, PT5 identify the ROB and RDMA bottlenecks; PT1/PT6 (novices)
  and PT2 (stopped at the first-level diagnosis) do not;
* the bottleneck analyzer is the most used feature in the diagnostic
  part, the profiling panel the least used overall;
* the regenerated survey table equals the paper's Figure 6
  (grand mean 4.5, Q4 highest at 4.83, Q6 lowest at 4.17 with the one
  anonymous 'disagree').
"""

import pytest

from repro.studies import PAPER_FIGURE6, run_study


@pytest.fixture(scope="module")
def study():
    return run_study()


def test_fig6_study_runs(benchmark):
    """Time one full six-participant study (12 live simulations)."""
    benchmark.group = "fig6"
    result = benchmark.pedantic(run_study, rounds=1, iterations=1)
    assert len(result.sessions) == 6


def test_fig6_success_roster(benchmark, study):
    benchmark.group = "fig6"
    benchmark(lambda: study.successful_participants)
    assert study.successful_participants == ["PT3", "PT4", "PT5"]


def test_fig6_feature_usage(benchmark, study):
    benchmark.group = "fig6"
    benchmark(lambda: study.feature_usage)
    assert study.most_used_feature == "bottleneck_analyzer"
    usage = study.feature_usage
    assert usage["profiler"] <= min(
        usage[f] for f in ("bottleneck_analyzer", "component_detail",
                           "progress"))


def test_fig6_survey_table_matches_paper(benchmark, study):
    benchmark.group = "fig6"
    benchmark(lambda: study.survey.grand_mean)
    print("\n\n=== Figure 6: survey response distribution ===")
    print(study.survey.format())
    assert study.matches_paper_figure6()
    assert study.survey.grand_mean == pytest.approx(4.5, abs=0.01)


def test_fig6_themes_cover_open_coding(benchmark, study):
    benchmark.group = "fig6"
    benchmark(lambda: [s.themes for s in study.sessions])
    all_themes = {t for s in study.sessions for t in s.themes}
    assert {"companion", "different perspective", "learning tool",
            "needs guidance for new users"} <= all_themes
    # The learning-tool theme comes specifically from the undergrads
    # who did not complete the diagnosis (PT1, PT6).
    learners = {s.profile.code for s in study.sessions
                if "learning tool" in s.themes}
    assert learners == {"PT1", "PT6"}
